"""``amd64_pmc`` collector: AMD Opteron hardware performance counters.

Each core has four programmable counter slots.  Following the original
tool (paper §3): at **job begin** the control registers are reprogrammed to
TACC's event set — SSE FLOPS, DRAM accesses, data-cache fills from system,
and HyperTransport link traffic — and the count registers reset; at
**periodic invocations** the counters are only *read*, never reprogrammed,
so a user who programmed their own events mid-job keeps them (we model
this as the rare job whose PMC rows carry foreign control codes and are
skipped by the summarizer).

Counters are 48-bit, so unlike the 32-bit IB counters they effectively
never roll over within a job.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import (
    BlockContext,
    Collector,
    SampleContext,
    core_fractions,
    core_fractions_block,
)
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["Amd64PmcCollector", "AMD64_EVENT_CODES"]

#: Control-register event codes (values are the tool's constants).
AMD64_EVENT_CODES: dict[str, int] = {
    "SSE_FLOPS": 0x4300C3,
    "DRAM_ACCESSES": 0x4300E0,
    "DCACHE_SYS_FILLS": 0x43004E,
    "HT_LINK_TRAFFIC": 0x4300F6,
}

#: Probability a job programs its own counters (papi/perfctr users).
USER_PROGRAMMED_PROB = 0.02
_FOREIGN_CODE = 0x430076  # CPU_CLK_UNHALTED, a common user choice

_CACHE_LINE = 64.0


class Amd64PmcCollector(Collector):
    """ctl0-3 (programmed event codes) + ctr0-3 (48-bit counts) per core."""

    def __init__(self, node, rng):
        super().__init__(node, rng)
        self._user_programmed = False

    @property
    def type_name(self) -> str:
        return "amd64_pmc"

    def build_schema(self) -> TypeSchema:
        entries = [SchemaEntry(f"ctl{i}") for i in range(4)]
        entries += [
            SchemaEntry(f"ctr{i}", is_event=True, width=48) for i in range(4)
        ]
        return TypeSchema("amd64_pmc", tuple(entries))

    def build_devices(self) -> tuple[str, ...]:
        return tuple(str(i) for i in range(self.node.hardware.cores))

    def on_job_begin(self, jobid: str, time: float) -> None:
        """Reprogram: write TACC control codes and zero the counters."""
        self._user_programmed = self.rng.random() < USER_PROGRAMMED_PROB
        codes = (
            [_FOREIGN_CODE] * 4
            if self._user_programmed
            else [AMD64_EVENT_CODES[e] for e in self.node.hardware.processor.pmc_events]
        )
        for dev in self.devices:
            acc = self._acc[dev]
            acc[:4] = codes
            acc[4:] = 0.0

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0 or ctx.rates is None:
            return
        if self._user_programmed:
            # Foreign events tick at an unrelated rate (cycles unhalted).
            clock = self.node.hardware.processor.clock_ghz * 1e9
            for dev in self.devices:
                for i in range(4):
                    self.bump(dev, f"ctr{i}", 0.25 * clock * dt)
            return
        n = self.node.hardware.cores
        user_f = ctx.rate("cpu_user_frac")
        active = core_fractions(user_f, n)
        total_active = max(active.sum(), 1e-9)

        node_flops = ctx.rate("flops_gf") * 1e9
        # Memory traffic: working-set churn plus I/O through the cache.
        dram_bytes = node_flops * 0.8 + ctx.rate("mem_used_gb") * 1e7
        ht_bytes = (ctx.rate("net_mpi_mb") * 1e6) * 1.5

        for c, dev in enumerate(self.devices):
            share = active[c] / total_active
            self.bump(dev, "ctr0", self.noisy(node_flops * share * dt))
            self.bump(dev, "ctr1",
                      self.noisy(dram_bytes * share / _CACHE_LINE * dt))
            self.bump(dev, "ctr2",
                      self.noisy(dram_bytes * share * 0.3 / _CACHE_LINE * dt))
            self.bump(dev, "ctr3",
                      self.noisy(ht_bytes * share / _CACHE_LINE * dt))

    def sample_block(self, block: BlockContext) -> np.ndarray:
        # _user_programmed is constant inside a block: it only changes in
        # on_job_begin, and the synthesis engine cuts blocks there.
        n = self.node.hardware.cores
        dt = np.asarray(block.dts, dtype=np.float64)
        inc = np.zeros((block.n, n, self._schema.n_values))
        if self._user_programmed:
            clock = self.node.hardware.processor.clock_ghz * 1e9
            tick = np.where((~block.idle) & (dt > 0), 0.25 * clock * dt, 0.0)
            inc[:, :, 4:] = tick[:, None, None]
        else:
            active = core_fractions_block(block.rate("cpu_user_frac"), n)
            total_active = np.maximum(active.sum(axis=1), 1e-9)
            share = active / total_active[:, None]
            node_flops = block.rate("flops_gf") * 1e9
            dram_bytes = node_flops * 0.8 + block.rate("mem_used_gb") * 1e7
            ht_bytes = (block.rate("net_mpi_mb") * 1e6) * 1.5
            # Idle and dt <= 0 rows end up with zero amounts (share or dt
            # is zero), which matches the scalar guard's early return.
            ds = dram_bytes[:, None] * share
            amounts = np.stack([
                node_flops[:, None] * share * dt[:, None],
                ds / _CACHE_LINE * dt[:, None],
                ds * 0.3 / _CACHE_LINE * dt[:, None],
                ht_bytes[:, None] * share / _CACHE_LINE * dt[:, None],
            ], axis=-1)
            inc[:, :, 4:] = self.noisy_block(amounts)
        # ctl gauges stay at their carried values (set by on_job_begin);
        # a zero increment through the cumsum leaves them bit-identical.
        return self.wrap_block(self.accumulate_block(inc))

    @property
    def user_programmed(self) -> bool:
        """Whether the current job overrode the counters (read by tests)."""
        return self._user_programmed
