"""``mem`` collector: per-socket memory gauges (as from
``/sys/devices/system/node/node*/meminfo``), in KB.

``MemUsed`` includes buffers and page cache — the paper's ``mem_used``
metric is defined to include "the disk buffer and cache managed by the
Linux operating system" (§4.2).
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.util.units import GB, KB

__all__ = ["MemCollector"]

#: Kernel + daemons resident on an idle node, GB.
_BASE_OS_GB = 1.2


class MemCollector(Collector):
    """Per-socket MemTotal/MemUsed/MemFree/Buffers/Cached/Active/Dirty."""

    @property
    def type_name(self) -> str:
        return "mem"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "mem",
            tuple(
                SchemaEntry(k, is_event=False, unit="KB")
                for k in ("MemTotal", "MemUsed", "MemFree", "Buffers",
                          "Cached", "Active", "Dirty")
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return tuple(str(i) for i in range(self.node.hardware.sockets))

    def advance(self, ctx: SampleContext) -> None:
        hw = self.node.hardware
        sockets = hw.sockets
        total_kb_per_socket = hw.memory_bytes / sockets / KB

        used_gb = ctx.rate("mem_used_gb", 0.0) + _BASE_OS_GB
        used_gb = min(used_gb, hw.memory_gb * 0.995)
        cache_gb = min(ctx.rate("mem_cache_gb", 0.3), used_gb * 0.95)

        # Socket 0 carries the kernel and most of the cache; remaining
        # sockets split the rest evenly (first-touch NUMA placement).
        weights = np.full(sockets, 1.0)
        weights[0] = 1.35
        weights /= weights.sum()
        for s in range(sockets):
            dev = str(s)
            used_kb = used_gb * GB / KB * weights[s] * sockets / 1.0
            used_kb = min(used_kb / sockets * sockets, total_kb_per_socket * 0.999)
            used_kb = min(used_gb * GB / KB * weights[s], total_kb_per_socket * 0.999)
            cached_kb = min(cache_gb * GB / KB * weights[s], used_kb * 0.95)
            self.set_gauge(dev, "MemTotal", total_kb_per_socket)
            self.set_gauge(dev, "MemUsed", used_kb)
            self.set_gauge(dev, "MemFree", total_kb_per_socket - used_kb)
            self.set_gauge(dev, "Buffers", cached_kb * 0.12)
            self.set_gauge(dev, "Cached", cached_kb * 0.88)
            self.set_gauge(dev, "Active", used_kb * 0.6)
            self.set_gauge(dev, "Dirty", cached_kb * 0.02)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        hw = self.node.hardware
        sockets = hw.sockets
        total_kb_per_socket = hw.memory_bytes / sockets / KB

        used_gb = np.minimum(
            block.rate("mem_used_gb", 0.0) + _BASE_OS_GB,
            hw.memory_gb * 0.995)
        cache_gb = np.minimum(block.rate("mem_cache_gb", 0.3), used_gb * 0.95)

        weights = np.full(sockets, 1.0)
        weights[0] = 1.35
        weights /= weights.sum()
        used_kb = np.minimum(
            (used_gb * GB / KB)[:, None] * weights[None, :],
            total_kb_per_socket * 0.999)
        cached_kb = np.minimum(
            (cache_gb * GB / KB)[:, None] * weights[None, :],
            used_kb * 0.95)
        vals = np.empty((block.n, sockets, self._schema.n_values))
        vals[..., 0] = total_kb_per_socket
        vals[..., 1] = used_kb
        vals[..., 2] = total_kb_per_socket - used_kb
        vals[..., 3] = cached_kb * 0.12
        vals[..., 4] = cached_kb * 0.88
        vals[..., 5] = used_kb * 0.6
        vals[..., 6] = cached_kb * 0.02
        if block.n:
            self._store_carry(vals[-1])
        return self.wrap_block(vals)
