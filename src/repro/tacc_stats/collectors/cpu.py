"""``cpu`` collector: per-core scheduler accounting (as from ``/proc/stat``).

Values are cumulative centiseconds per core.  Node-level busy fractions
from the job behaviour are distributed across cores fill-first (see
:func:`repro.tacc_stats.collectors.base.core_fractions`): this is what
gives TACC_Stats its per-core resolution of undersubscribed jobs.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import (
    BlockContext,
    Collector,
    SampleContext,
    core_fractions,
    core_fractions_block,
)
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["CpuCollector"]

#: Background OS activity on an idle node (fractions of one core-second).
_IDLE_SYS_FRAC = 0.002
_IDLE_IRQ_FRAC = 0.0003


class CpuCollector(Collector):
    """Per-core user/nice/system/idle/iowait/irq/softirq centiseconds."""

    @property
    def type_name(self) -> str:
        return "cpu"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "cpu",
            tuple(
                SchemaEntry(k, is_event=True, unit="cs")
                for k in ("user", "nice", "system", "idle", "iowait",
                          "irq", "softirq")
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return tuple(str(i) for i in range(self.node.hardware.cores))

    def advance(self, ctx: SampleContext) -> None:
        n = self.node.hardware.cores
        dt_cs = ctx.dt * 100.0
        if dt_cs <= 0:
            return
        user_f = ctx.rate("cpu_user_frac")
        sys_f = ctx.rate("cpu_sys_frac", _IDLE_SYS_FRAC)
        wait_f = ctx.rate("cpu_iowait_frac")
        # System time is spread by the kernel across all cores, so each
        # core only has (1 - sys) capacity for user time; iowait fills
        # from the top (idle-side) cores.  This keeps the node-level
        # column sums exactly at the requested fractions — naive
        # fill-first would oversubscribe the busy cores and the clip
        # below would silently convert user time into idle.
        sys_c = min(sys_f, 1.0)
        cap = max(1.0 - sys_c, 1e-6)
        per_core_user = core_fractions(min(user_f / cap, 1.0), n) * cap
        per_core_sys = np.full(n, sys_c)
        per_core_wait = core_fractions(min(wait_f / cap, 1.0), n)[::-1] * cap
        irq_f = _IDLE_IRQ_FRAC

        for c in range(n):
            dev = str(c)
            u = self.noisy(per_core_user[c] * dt_cs)
            s = self.noisy(per_core_sys[c] * dt_cs)
            w = self.noisy(per_core_wait[c] * dt_cs)
            irq = irq_f * dt_cs
            soft = 0.5 * irq
            busy = u + s + w + irq + soft
            if busy > dt_cs:
                scale = dt_cs / busy
                u, s, w, irq, soft = (x * scale for x in (u, s, w, irq, soft))
                busy = dt_cs
            self.bump(dev, "user", u)
            self.bump(dev, "system", s)
            self.bump(dev, "iowait", w)
            self.bump(dev, "irq", irq)
            self.bump(dev, "softirq", soft)
            self.bump(dev, "idle", dt_cs - busy)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        n = self.node.hardware.cores
        dt_cs = np.asarray(block.dts, dtype=np.float64) * 100.0
        user_f = block.rate("cpu_user_frac")
        sys_f = block.rate("cpu_sys_frac", _IDLE_SYS_FRAC)
        wait_f = block.rate("cpu_iowait_frac")
        sys_c = np.minimum(sys_f, 1.0)
        cap = np.maximum(1.0 - sys_c, 1e-6)
        per_core_user = (
            core_fractions_block(np.minimum(user_f / cap, 1.0), n)
            * cap[:, None])
        per_core_sys = np.repeat(sys_c[:, None], n, axis=1)
        per_core_wait = (
            core_fractions_block(np.minimum(wait_f / cap, 1.0), n)[:, ::-1]
            * cap[:, None])
        # Draw order matches the scalar loop: time-major, then per core
        # the (user, system, iowait) triple.  dt <= 0 rows contribute
        # zero amounts, so — like the scalar early return — they draw
        # nothing and bump nothing.
        amounts = (
            np.stack([per_core_user, per_core_sys, per_core_wait], axis=-1)
            * dt_cs[:, None, None])
        usw = self.noisy_block(amounts)
        u, s, w = usw[..., 0], usw[..., 1], usw[..., 2]
        irq = np.repeat((_IDLE_IRQ_FRAC * dt_cs)[:, None], n, axis=1)
        soft = 0.5 * irq
        busy = u + s + w + irq + soft
        cap_cs = dt_cs[:, None]
        over = busy > cap_cs
        idle = cap_cs - busy
        if over.any():
            scale = np.broadcast_to(cap_cs, busy.shape)[over] / busy[over]
            for arr in (u, s, w, irq, soft):
                arr[over] = arr[over] * scale
            idle[over] = 0.0
        inc = np.zeros((block.n, n, self._schema.n_values))
        inc[..., 0] = u
        inc[..., 2] = s
        inc[..., 3] = idle
        inc[..., 4] = w
        inc[..., 5] = irq
        inc[..., 6] = soft
        return self.wrap_block(self.accumulate_block(inc))
