"""``tmpfs`` collector: ram-backed filesystem usage per mount (``/dev/shm``
and the job's ramdisk scratch), gauges in bytes and inodes."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema
from repro.util.units import GB, MB

__all__ = ["TmpfsCollector"]


class TmpfsCollector(Collector):
    """bytes_used / files_used per ram-backed mount."""

    @property
    def type_name(self) -> str:
        return "tmpfs"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "tmpfs",
            (
                SchemaEntry("bytes_used", unit="B"),
                SchemaEntry("files_used"),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return ("dev_shm", "tmp")

    def advance(self, ctx: SampleContext) -> None:
        if ctx.rates is None:
            shm_bytes, tmp_bytes = 1 * MB, 4 * MB
        else:
            # MPI shared-memory windows appear under /dev/shm; stage files
            # under /tmp scale (weakly) with local block traffic.
            shm_bytes = min(
                ctx.rate("net_mpi_mb") * 8 * MB, 2 * GB
            ) + 1 * MB
            tmp_bytes = 4 * MB + ctx.rate("block_mb") * 64 * MB
        self.set_gauge("dev_shm", "bytes_used", shm_bytes)
        self.set_gauge("dev_shm", "files_used", max(1, shm_bytes // (32 * MB)))
        self.set_gauge("tmp", "bytes_used", tmp_bytes)
        self.set_gauge("tmp", "files_used", max(4, tmp_bytes // MB // 4))

    def sample_block(self, block: BlockContext) -> np.ndarray:
        shm_bytes = np.where(
            block.idle,
            float(1 * MB),
            np.minimum(block.rate("net_mpi_mb") * 8 * MB, 2 * GB) + 1 * MB)
        tmp_bytes = np.where(
            block.idle,
            float(4 * MB),
            4 * MB + block.rate("block_mb") * 64 * MB)
        vals = np.empty((block.n, 2, self._schema.n_values))
        vals[:, 0, 0] = shm_bytes
        vals[:, 0, 1] = np.maximum(1.0, shm_bytes // (32 * MB))
        vals[:, 1, 0] = tmp_bytes
        vals[:, 1, 1] = np.maximum(4.0, tmp_bytes // MB // 4)
        if block.n:
            self._store_carry(vals[-1])
        return self.wrap_block(vals)
