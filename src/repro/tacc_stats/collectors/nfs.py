"""``nfs`` collector: NFS client statistics per mount (as from
``/proc/self/mountstats``).

Lonestar4's home filesystem is NFS over Ethernet (paper §4.1); its
traffic shows up here rather than in the Lustre (llite) collector.  The
canonical rate vector's ``io_share_*`` fields drive whichever shared
non-scratch/work mount a system has — Lustre ``share`` on Ranger, NFS
``home`` on Lonestar4 — so the summarizer can fill the paper's
``io_share`` metrics from either collector.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["NfsCollector"]

_RPC_BYTES = 32 * 1024.0  # rsize/wsize of the era


class NfsCollector(Collector):
    """read_bytes / write_bytes / rpc_ops / retrans per NFS mount."""

    def __init__(self, node, rng, mounts: tuple[str, ...] = ("home",)):
        if not mounts:
            raise ValueError("nfs needs at least one mount")
        self._mounts = tuple(mounts)
        super().__init__(node, rng)

    @property
    def type_name(self) -> str:
        return "nfs"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "nfs",
            (
                SchemaEntry("read_bytes", is_event=True, unit="B"),
                SchemaEntry("write_bytes", is_event=True, unit="B"),
                SchemaEntry("rpc_ops", is_event=True),
                SchemaEntry("retrans", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return self._mounts

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        for mount in self.devices:
            # NFS mounts carry the canonical "share" traffic.
            w = ctx.rate("io_share_write_mb") if ctx.rates is not None else 0.0
            r = ctx.rate("io_share_read_mb") if ctx.rates is not None else 0.0
            wb = self.noisy(w * 1e6 * dt)
            rb = self.noisy(r * 1e6 * dt)
            ops = (wb + rb) / _RPC_BYTES + 0.01 * dt  # getattr chatter
            self.bump(mount, "write_bytes", wb)
            self.bump(mount, "read_bytes", rb)
            self.bump(mount, "rpc_ops", ops)
            self.bump(mount, "retrans", 1e-4 * ops)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        n_m = len(self.devices)
        w = block.rate("io_share_write_mb", 0.0)
        r = block.rate("io_share_read_mb", 0.0)
        # Per sample, per mount: write then read draws (amounts identical
        # across mounts, draws independent).
        amounts = np.repeat(
            np.stack([w * 1e6 * dt, r * 1e6 * dt], axis=-1)[:, None, :],
            n_m, axis=1)
        b = self.noisy_block(amounts)
        wb, rb = b[..., 0], b[..., 1]
        ops = (wb + rb) / _RPC_BYTES + (0.01 * dt)[:, None]
        inc = np.empty((block.n, n_m, self._schema.n_values))
        inc[..., 0] = rb
        inc[..., 1] = wb
        inc[..., 2] = ops
        inc[..., 3] = 1e-4 * ops
        return self.wrap_block(self.accumulate_block(inc))
