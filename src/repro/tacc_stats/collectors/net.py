"""``net`` collector: per-interface byte/packet counters (as from
``/sys/class/net/*/statistics``).

Ethernet carries NFS and service traffic; ``ib0`` (IPoIB) carries a small
slice of the MPI fabric traffic that goes through the IP stack.  Real
``/sys`` byte counters on these kernels were 32-bit on some drivers — we
keep eth0 at 32 bits so the rollover-correction path is exercised by real
data, as it was in production.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["NetCollector"]

_MTU = 1500.0
_IPOIB_SHARE = 0.01  # share of MPI traffic that rides IPoIB


class NetCollector(Collector):
    """rx_bytes / tx_bytes / rx_packets / tx_packets per interface."""

    @property
    def type_name(self) -> str:
        return "net"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "net",
            (
                SchemaEntry("rx_bytes", is_event=True, unit="B", width=32),
                SchemaEntry("tx_bytes", is_event=True, unit="B", width=32),
                SchemaEntry("rx_packets", is_event=True),
                SchemaEntry("tx_packets", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return self.node.hardware.net_devices

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        eth_mb = ctx.rate("net_eth_mb", 0.002)
        mpi_mb = ctx.rate("net_mpi_mb")
        for dev in self.devices:
            if dev.startswith("ib"):
                mb = mpi_mb * _IPOIB_SHARE
            else:
                mb = eth_mb
            tx = self.noisy(mb * 1e6 * dt)
            rx = self.noisy(mb * 1e6 * dt * 0.9)
            self.bump(dev, "tx_bytes", tx)
            self.bump(dev, "rx_bytes", rx)
            self.bump(dev, "tx_packets", tx / _MTU)
            self.bump(dev, "rx_packets", rx / _MTU)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        eth_mb = block.rate("net_eth_mb", 0.002)
        mpi_mb = block.rate("net_mpi_mb")
        mb = np.empty((block.n, len(self.devices)))
        for d, dev in enumerate(self.devices):
            mb[:, d] = mpi_mb * _IPOIB_SHARE if dev.startswith("ib") else eth_mb
        # Per sample, per device: the scalar draws tx then rx.  Keep the
        # scalar's left-to-right association: (mb * 1e6) * dt [* 0.9].
        base = mb * 1e6 * dt[:, None]
        amounts = np.stack([base, base * 0.9], axis=-1)
        txrx = self.noisy_block(amounts)
        tx, rx = txrx[..., 0], txrx[..., 1]
        inc = np.empty((block.n, len(self.devices), self._schema.n_values))
        inc[..., 0] = rx
        inc[..., 1] = tx
        inc[..., 2] = rx / _MTU
        inc[..., 3] = tx / _MTU
        return self.wrap_block(self.accumulate_block(inc))
