"""``block`` collector: local block-device statistics per disk (as from
``/proc/diskstats``), sector counts (512 B sectors)."""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import BlockContext, Collector, SampleContext
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["BlockCollector"]

_SECTOR = 512.0
_IO_BYTES = 64 * 1024.0


class BlockCollector(Collector):
    """rd_sectors / wr_sectors / rd_ios / wr_ios per local disk."""

    @property
    def type_name(self) -> str:
        return "block"

    def build_schema(self) -> TypeSchema:
        return TypeSchema(
            "block",
            (
                SchemaEntry("rd_sectors", is_event=True, unit="512B"),
                SchemaEntry("wr_sectors", is_event=True, unit="512B"),
                SchemaEntry("rd_ios", is_event=True),
                SchemaEntry("wr_ios", is_event=True),
            ),
        )

    def build_devices(self) -> tuple[str, ...]:
        return self.node.hardware.block_devices

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0:
            return
        mb = ctx.rate("block_mb", 0.005)  # syslog etc. trickle when idle
        per_dev = mb / len(self.devices)
        for dev in self.devices:
            wb = self.noisy(per_dev * 0.7 * 1e6 * dt)
            rb = self.noisy(per_dev * 0.3 * 1e6 * dt)
            self.bump(dev, "wr_sectors", wb / _SECTOR)
            self.bump(dev, "rd_sectors", rb / _SECTOR)
            self.bump(dev, "wr_ios", wb / _IO_BYTES)
            self.bump(dev, "rd_ios", rb / _IO_BYTES)

    def sample_block(self, block: BlockContext) -> np.ndarray:
        dt = np.asarray(block.dts, dtype=np.float64)
        n_dev = len(self.devices)
        per_dev = block.rate("block_mb", 0.005) / n_dev
        # Per sample, per device: write then read draws.
        amounts = np.repeat(
            np.stack([per_dev * 0.7 * 1e6 * dt, per_dev * 0.3 * 1e6 * dt],
                     axis=-1)[:, None, :],
            n_dev, axis=1)
        b = self.noisy_block(amounts)
        wb, rb = b[..., 0], b[..., 1]
        inc = np.empty((block.n, n_dev, self._schema.n_values))
        inc[..., 0] = rb / _SECTOR
        inc[..., 1] = wb / _SECTOR
        inc[..., 2] = rb / _IO_BYTES
        inc[..., 3] = wb / _IO_BYTES
        return self.wrap_block(self.accumulate_block(inc))
