"""``intel_pmc`` collector: Intel Nehalem/Westmere performance counters.

The event set programmed at job begin is FLOPS (FP_COMP_OPS_EXE), QPI
(SMP/NUMA) traffic, and L1D hits (paper §3).  Crucially,
``FP_COMP_OPS_EXE`` on Westmere counts *issued* FP micro-ops, not retired
SSE FLOPs — it systematically over-counts relative to the Opteron's
``SSE_FLOPS`` event.  The paper calls this out: "Lonestar4 flops ... were
not comparable to the Ranger plot because they were not SSE flops."  We
model the over-count with :data:`FP_OVERCOUNT` so the cross-system
incomparability is reproduced, not papered over.
"""

from __future__ import annotations

import numpy as np

from repro.tacc_stats.collectors.base import (
    BlockContext,
    Collector,
    SampleContext,
    core_fractions,
    core_fractions_block,
)
from repro.tacc_stats.schema import SchemaEntry, TypeSchema

__all__ = ["IntelPmcCollector", "INTEL_EVENT_CODES", "FP_OVERCOUNT"]

INTEL_EVENT_CODES: dict[str, int] = {
    "FP_COMP_OPS": 0x530110,
    "QPI_TRAFFIC": 0x530020,
    "L1D_HITS": 0x530140,
    # Sandy Bridge (Stampede archetype): AVX FP ops and last-level-cache
    # misses; counter semantics are unchanged (ctr0 carries the FP
    # event, ctr2 the cache event), only the programmed codes differ.
    "SIMD_FP_256": 0x530211,
    "LLC_MISSES": 0x53412E,
}

#: Issued-vs-retired over-count of FP_COMP_OPS_EXE relative to true FLOPs.
FP_OVERCOUNT = 1.8

USER_PROGRAMMED_PROB = 0.02
_FOREIGN_CODE = 0x53003C  # UNHALTED_CORE_CYCLES

_CACHE_LINE = 64.0


class IntelPmcCollector(Collector):
    """FIXED_CTR0 (instructions) + ctl/ctr pairs for 3 programmable PMCs."""

    def __init__(self, node, rng):
        super().__init__(node, rng)
        self._user_programmed = False

    @property
    def type_name(self) -> str:
        return "intel_pmc"

    def build_schema(self) -> TypeSchema:
        entries = [SchemaEntry("FIXED_CTR0", is_event=True, width=48)]
        entries += [SchemaEntry(f"ctl{i}") for i in range(3)]
        entries += [
            SchemaEntry(f"ctr{i}", is_event=True, width=48) for i in range(3)
        ]
        return TypeSchema("intel_pmc", tuple(entries))

    def build_devices(self) -> tuple[str, ...]:
        return tuple(str(i) for i in range(self.node.hardware.cores))

    def on_job_begin(self, jobid: str, time: float) -> None:
        self._user_programmed = self.rng.random() < USER_PROGRAMMED_PROB
        codes = (
            [_FOREIGN_CODE] * 3
            if self._user_programmed
            else [INTEL_EVENT_CODES[e] for e in self.node.hardware.processor.pmc_events]
        )
        for dev in self.devices:
            acc = self._acc[dev]
            acc[0] = 0.0          # FIXED_CTR0
            acc[1:4] = codes      # ctl0-2
            acc[4:] = 0.0         # ctr0-2

    def advance(self, ctx: SampleContext) -> None:
        dt = ctx.dt
        if dt <= 0 or ctx.rates is None:
            return
        clock = self.node.hardware.processor.clock_ghz * 1e9
        n = self.node.hardware.cores
        user_f = ctx.rate("cpu_user_frac")
        active = core_fractions(user_f, n)
        total_active = max(active.sum(), 1e-9)

        if self._user_programmed:
            for c, dev in enumerate(self.devices):
                ipc = 1.1 * active[c]
                self.bump(dev, "FIXED_CTR0", ipc * clock * dt)
                for i in range(3):
                    self.bump(dev, f"ctr{i}", active[c] * clock * dt)
            return

        node_flops = ctx.rate("flops_gf") * 1e9
        qpi_bytes = (ctx.rate("net_mpi_mb") * 1e6) * 1.5 + ctx.rate("mem_used_gb") * 1e7
        for c, dev in enumerate(self.devices):
            share = active[c] / total_active
            ipc = 1.1 * active[c]
            self.bump(dev, "FIXED_CTR0", self.noisy(ipc * clock * dt))
            self.bump(dev, "ctr0",
                      self.noisy(node_flops * FP_OVERCOUNT * share * dt))
            self.bump(dev, "ctr1",
                      self.noisy(qpi_bytes * share / _CACHE_LINE * dt))
            self.bump(dev, "ctr2",
                      self.noisy(0.35 * clock * active[c] * dt))

    def sample_block(self, block: BlockContext) -> np.ndarray:
        # _user_programmed is constant inside a block (see amd64_pmc).
        n = self.node.hardware.cores
        dt = np.asarray(block.dts, dtype=np.float64)
        clock = self.node.hardware.processor.clock_ghz * 1e9
        active = core_fractions_block(block.rate("cpu_user_frac"), n)
        inc = np.zeros((block.n, n, self._schema.n_values))
        if self._user_programmed:
            # Idle rows have active == 0, so they contribute nothing —
            # same as the scalar guard.
            ipc = 1.1 * active
            mask = ((~block.idle) & (dt > 0)).astype(np.float64)
            inc[:, :, 0] = ipc * clock * dt[:, None] * mask[:, None]
            inc[:, :, 4:] = (active * clock * dt[:, None] * mask[:, None])[:, :, None]
        else:
            total_active = np.maximum(active.sum(axis=1), 1e-9)
            share = active / total_active[:, None]
            node_flops = block.rate("flops_gf") * 1e9
            qpi_bytes = (block.rate("net_mpi_mb") * 1e6) * 1.5 \
                + block.rate("mem_used_gb") * 1e7
            ipc = 1.1 * active
            amounts = np.stack([
                ipc * clock * dt[:, None],
                node_flops[:, None] * FP_OVERCOUNT * share * dt[:, None],
                qpi_bytes[:, None] * share / _CACHE_LINE * dt[:, None],
                0.35 * clock * active * dt[:, None],
            ], axis=-1)
            drawn = self.noisy_block(amounts)
            inc[:, :, 0] = drawn[..., 0]
            inc[:, :, 4:] = drawn[..., 1:]
        return self.wrap_block(self.accumulate_block(inc))

    @property
    def user_programmed(self) -> bool:
        return self._user_programmed
