"""Archive v2: a binary, memory-mappable columnar host-day format.

The text format (docs/FORMAT.md) is the paper-faithful interchange, but
parsing it caps serial ingest at ~17-21 MB/s — every downstream lookback
and re-read pays that tax.  A v2 file stores the same host-day as
fixed-width numpy column chunks that the reader maps straight into the
arrays the ingest engine consumes (``np.frombuffer`` over ``mmap`` —
no line splitting, no str->int casts, no copies of the value data).

On-disk layout (all integers little-endian, chunks 64-byte aligned so
mapped arrays are cache-line aligned)::

    magic     8B   b"\\x93RPC2\\r\\n\\x00"
    version   u32  2
    hdr_len   u32  byte length of the header JSON
    header    JSON: hostname, ordered properties, schema lines, jobid
              tag table, marks [(block, kind, jobid)], per-type device
              tables and row counts, text_bytes, source fingerprint
    chunks    binary column data (see table below)
    footer    JSON chunk index: [{name, offset, nbytes, dtype, shape,
              sha256}], written last so a truncated file can never
              present a valid index
    ftr_len   u64  byte length of the footer JSON
    tail      8B   b"\\x00RPC2END"

Column chunks (R = total data rows in file order, N = blocks)::

    times        f8[N]      block timestamps
    tags         u4[N]      index into the header's jobid tag table
    row_type     u2[R]      global row stream: type of each row
    row_block    u4[R]      global row stream: block of each row
    dev/<type>   u4[Rt]     per type: device-table index per row
    val/<type>   u8[Rt,K]   per type: value matrix (K = schema arity)

The two global streams record the exact interleaving of rows, so a v2
file reconstructs its source text byte-for-byte (for canonical,
writer-produced text; see :func:`host_day_to_text`).  Every chunk
carries a sha256 digest that the reader verifies on open, so silent
bit-rot is impossible — a corrupt chunk raises :class:`V2FormatError`,
which subclasses :class:`~repro.tacc_stats.parser.ParseError` so the
quarantine/repair error policies treat a damaged v2 file exactly like a
damaged gzip stream (``unreadable_file``).

Fingerprint carryover: the header stores ``source_sha256`` — the sha256
of the bytes the *text* path stored (gz or plain) for this host-day.
:meth:`HostArchive.manifest` reports that digest for v2 files, so
converting an archive in place never perturbs the PR5 ingest ledger: an
``ingest(mode="append")`` over a freshly converted archive consumes
zero files.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import mmap
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.tacc_stats.parser import ParseError, parse_host_text
from repro.tacc_stats.schema import TypeSchema
from repro.tacc_stats.types import HostData, Mark, TimestampBlock
from repro.telemetry.metrics import get_registry

__all__ = [
    "V2_SUFFIX",
    "V2FormatError",
    "V2HostDay",
    "encode_host_blocks",
    "encode_host_text",
    "is_v2_path",
    "read_header",
    "read_host_day",
    "source_fingerprint_for_text",
]

V2_SUFFIX = ".v2"
_MAGIC = b"\x93RPC2\r\n\x00"
_TAIL = b"\x00RPC2END"
_VERSION = 2
_ALIGN = 64

#: Schema header lines are identical across every file a collector suite
#: produces; parsing each once per process keeps the v2 open path cheap.
_SCHEMA_CACHE: dict[str, TypeSchema] = {}


class V2FormatError(ParseError):
    """Malformed or corrupt v2 file.

    Subclasses :class:`ParseError` so every existing error-policy path
    (strict raise, quarantine drop, repair ``unreadable_file``) handles
    a damaged v2 file exactly as it handles damaged text.
    """


def is_v2_path(path: Path) -> bool:
    """True when *path* names a v2 columnar file (by suffix)."""
    return path.name.endswith(V2_SUFFIX)


def source_fingerprint_for_text(text: str, compress: bool) -> tuple[str, str]:
    """(sha256, kind) the *text* path would have recorded for *text*.

    ``kind`` is ``"gz"`` or ``"text"`` — what the archive would have
    stored.  Writing a v2 file with this fingerprint makes a v2 archive
    ledger-identical to the text archive of the same data, which is what
    keeps append-mode ingest working across format conversions.
    """
    raw = text.encode("utf-8")
    if compress:
        return (hashlib.sha256(
            gzip.compress(raw, compresslevel=6, mtime=0)).hexdigest(), "gz")
    return hashlib.sha256(raw).hexdigest(), "text"


def _pad_to(parts: list[bytes], size: int, align: int = _ALIGN) -> int:
    """Append zero padding so the next part starts aligned; new offset."""
    rem = size % align
    if rem:
        parts.append(b"\x00" * (align - rem))
        size += align - rem
    return size


def _mark_block_indices(text: str) -> list[int]:
    """Block index each ``%`` mark line belongs to, in file order.

    :class:`HostData` keeps only a mark's *time*, which is ambiguous
    when consecutive blocks share a timestamp; one cheap first-character
    scan of the already-validated text recovers the exact block.
    """
    out: list[int] = []
    bi = -1
    for line in text.split("\n"):
        if not line:
            continue
        c = line[0]
        if c.isdigit():
            bi += 1
        elif c == "%":
            out.append(bi)
    return out


def _format_time(t: float) -> str:
    """Serialize a block timestamp the way :class:`StatsWriter` does."""
    return str(int(t)) if float(t).is_integer() else repr(float(t))


def encode_host_text(text: str, source_sha256: str | None = None,
                     source_kind: str = "gz") -> bytes:
    """Encode one host-day's *text* into v2 bytes.

    The text must parse strictly (malformed input raises
    :class:`ParseError` exactly as the text parser would — conversion
    never launders corrupt data into a clean-looking binary file).
    *source_sha256*/*source_kind* record the fingerprint of the stored
    text representation this file replaces; when omitted they are
    computed from *text* as if the archive had stored it per
    *source_kind*.
    """
    if source_sha256 is None:
        source_sha256, source_kind = source_fingerprint_for_text(
            text, compress=(source_kind == "gz"))
    host = parse_host_text(text)

    type_order = list(host.schemas)
    type_idx = {name: i for i, name in enumerate(type_order)}
    devices: list[dict[str, int]] = [{} for _ in type_order]
    dev_rows: list[list[int]] = [[] for _ in type_order]
    val_rows: list[list[np.ndarray]] = [[] for _ in type_order]
    row_type: list[int] = []
    row_block: list[int] = []
    for bi, block in enumerate(host.blocks):
        for tname, by_dev in block.rows.items():
            ti = type_idx[tname]
            devmap = devices[ti]
            for dev, vec in by_dev.items():
                di = devmap.get(dev)
                if di is None:
                    di = devmap[dev] = len(devmap)
                dev_rows[ti].append(di)
                val_rows[ti].append(vec)
                row_type.append(ti)
                row_block.append(bi)

    tag_table: dict[str, int] = {}
    tag_idx = []
    for block in host.blocks:
        tag = ",".join(block.jobids) if block.jobids else "-"
        gi = tag_table.get(tag)
        if gi is None:
            gi = tag_table[tag] = len(tag_table)
        tag_idx.append(gi)

    mark_blocks = _mark_block_indices(text)
    assert len(mark_blocks) == len(host.marks)

    header = {
        "format": "repro-columnar",
        "version": _VERSION,
        "hostname": host.hostname,
        "properties": [[k, v] for k, v in host.properties.items()],
        "schemas": [host.schemas[n].header_line() for n in type_order],
        "types": [
            {"name": name, "devices": list(devices[i]),
             "n_rows": len(dev_rows[i])}
            for i, name in enumerate(type_order)
        ],
        "n_blocks": len(host.blocks),
        "jobid_tags": list(tag_table),
        "marks": [[mark_blocks[i], m.kind, m.jobid]
                  for i, m in enumerate(host.marks)],
        "text_bytes": len(text.encode("utf-8")),
        "source_sha256": source_sha256,
        "source_kind": source_kind,
    }

    chunks: list[tuple[str, np.ndarray]] = [
        ("times", np.array([b.time for b in host.blocks], dtype="<f8")),
        ("tags", np.array(tag_idx, dtype="<u4")),
        ("row_type", np.array(row_type, dtype="<u2")),
        ("row_block", np.array(row_block, dtype="<u4")),
    ]
    for i, name in enumerate(type_order):
        k = host.schemas[name].n_values
        vals = (np.vstack(val_rows[i]).astype("<u8", copy=False)
                if val_rows[i] else np.empty((0, k), dtype="<u8"))
        chunks.append((f"dev/{name}", np.array(dev_rows[i], dtype="<u4")))
        chunks.append((f"val/{name}", vals))

    return _assemble_v2(header, chunks)


def _assemble_v2(header: dict,
                 chunks: list[tuple[str, np.ndarray]]) -> bytes:
    """Serialize a prepared header + column chunks into v2 bytes.

    Shared tail of :func:`encode_host_text` (text re-parse path) and
    :func:`encode_host_blocks` (direct synthesis path): both produce the
    same header dict and chunk list, so the bytes — including per-chunk
    digests and the footer index — are identical whichever path built
    the columns.
    """
    header_json = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [_MAGIC, struct.pack("<II", _VERSION, len(header_json)),
             header_json]
    size = 16 + len(header_json)
    index = []
    for name, arr in chunks:
        size = _pad_to(parts, size)
        data = np.ascontiguousarray(arr).tobytes()
        index.append({
            "name": name,
            "offset": size,
            "nbytes": len(data),
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "sha256": hashlib.sha256(data).hexdigest(),
        })
        parts.append(data)
        size += len(data)
    footer_json = json.dumps({"chunks": index},
                             separators=(",", ":")).encode("utf-8")
    parts.append(footer_json)
    parts.append(struct.pack("<Q", len(footer_json)) + _TAIL)
    blob = b"".join(parts)
    registry = get_registry()
    registry.counter("archive.v2.files_encoded").inc()
    registry.counter("archive.v2.bytes_encoded").inc(len(blob))
    return blob


def encode_host_blocks(
    text: str,
    hostname: str,
    properties: dict[str, str],
    schemas: list[TypeSchema],
    devices_by_type: list[tuple[str, ...]],
    times: np.ndarray,
    tags: list[str],
    marks: list[tuple[int, str, str]],
    values_by_type: list[np.ndarray],
    source_sha256: str,
    source_kind: str,
) -> bytes:
    """Encode synthesized column arrays straight into v2 bytes.

    The direct-to-v2 fast path: the vectorized synthesis engine already
    holds every block's values as ``[n_blocks, n_devices, n_values]``
    uint64 arrays per type, so re-parsing the rendered text (what
    :func:`encode_host_text` does) would only reconstruct what the
    caller started from.  This builds the identical header and chunks
    from the arrays — every block carries every (type, device) row in
    suite order, which is exactly what the daemon emits — and defers to
    :func:`_assemble_v2`, so the output is byte-identical to encoding
    the rendered *text*.

    *text* is the rendered text representation (still produced by the
    fast path — the archive's ledger fingerprint and ``text_bytes``
    volume accounting are defined over it); *times* holds the block
    timestamps as serialized (``float(int(t))``); *marks* are
    ``(block_index, kind, jobid)`` in file order.
    """
    n_blocks = int(np.asarray(times).shape[0])
    tag_table: dict[str, int] = {}
    tag_idx = []
    for tag in tags:
        gi = tag_table.get(tag)
        if gi is None:
            gi = tag_table[tag] = len(tag_table)
        tag_idx.append(gi)

    header = {
        "format": "repro-columnar",
        "version": _VERSION,
        "hostname": hostname,
        "properties": [[k, v] for k, v in properties.items()],
        "schemas": [s.header_line() for s in schemas],
        "types": [
            {"name": s.type_name, "devices": list(devices_by_type[i]),
             "n_rows": n_blocks * len(devices_by_type[i])}
            for i, s in enumerate(schemas)
        ],
        "n_blocks": n_blocks,
        "jobid_tags": list(tag_table),
        "marks": [[b, kind, jobid] for b, kind, jobid in marks],
        "text_bytes": len(text.encode("utf-8")),
        "source_sha256": source_sha256,
        "source_kind": source_kind,
    }

    # Every block emits the full suite in order, so the global row
    # streams are one repeated pattern: types in suite order with one
    # row per device.
    pattern = np.concatenate([
        np.full(len(devs), ti, dtype="<u2")
        for ti, devs in enumerate(devices_by_type)
    ]) if devices_by_type else np.empty(0, dtype="<u2")
    chunks: list[tuple[str, np.ndarray]] = [
        ("times", np.asarray(times, dtype="<f8")),
        ("tags", np.array(tag_idx, dtype="<u4")),
        ("row_type", np.tile(pattern, n_blocks)),
        ("row_block", np.repeat(np.arange(n_blocks, dtype="<u4"),
                                pattern.shape[0])),
    ]
    for i, schema in enumerate(schemas):
        n_dev = len(devices_by_type[i])
        k = schema.n_values
        vals = np.asarray(values_by_type[i])
        if vals.shape != (n_blocks, n_dev, k):
            raise ValueError(
                f"{schema.type_name}: values shape {vals.shape}, "
                f"expected {(n_blocks, n_dev, k)}")
        chunks.append((f"dev/{schema.type_name}",
                       np.tile(np.arange(n_dev, dtype="<u4"), n_blocks)))
        chunks.append((f"val/{schema.type_name}",
                       vals.reshape(n_blocks * n_dev, k).astype(
                           "<u8", copy=False)))
    return _assemble_v2(header, chunks)


@dataclass(frozen=True)
class _TypeColumns:
    """One record type's decoded columns (views into the mapped file)."""

    name: str
    schema: TypeSchema
    devices: tuple[str, ...]
    dev_idx: np.ndarray
    values: np.ndarray  # shape (n_rows, n_values)


class V2HostDay:
    """A decoded v2 file: header metadata plus zero-copy column views.

    Constructed by :func:`read_host_day`.  ``to_host_data()`` builds the
    :class:`HostData` the ingest engine consumes (value vectors are
    views into the mapped file — nothing is copied); ``to_text()``
    reconstructs the canonical text representation byte-for-byte.
    """

    def __init__(self, header: dict, times: np.ndarray, tags: np.ndarray,
                 row_type: np.ndarray, row_block: np.ndarray,
                 types: list[_TypeColumns], bytes_mapped: int,
                 chunks_read: int):
        self.header = header
        self.times = times
        self.tags = tags
        self.row_type = row_type
        self.row_block = row_block
        self.types = types
        self.bytes_mapped = bytes_mapped
        self.chunks_read = chunks_read

    @property
    def hostname(self) -> str:
        return self.header["hostname"]

    def to_host_data(self) -> HostData:
        """Rebuild :class:`HostData` with zero-copy value vectors.

        Insertion order (types within a block, devices within a type)
        reproduces the source file's order exactly, so float reductions
        downstream (which sum in dict order) are bit-identical to the
        text-parsed path.
        """
        host = HostData(hostname=self.hostname)
        host.properties = dict(self.header["properties"])
        for tc in self.types:
            host.schemas[tc.name] = tc.schema

        tag_tuples = [
            () if tag == "-" else tuple(tag.split(","))
            for tag in self.header["jobid_tags"]
        ]
        times_list = self.times.tolist()
        blocks = [
            TimestampBlock(time=t, jobids=tag_tuples[g])
            for t, g in zip(times_list, self.tags.tolist())
        ]
        host.blocks = blocks

        row_type = self.row_type
        row_block = self.row_block
        for ti, tc in enumerate(self.types):
            n = tc.values.shape[0]
            if n == 0:
                continue
            rb = row_block[row_type == ti]
            if rb.shape[0] != n or (n > 1 and not bool(
                    (rb[1:] >= rb[:-1]).all())):
                raise V2FormatError(
                    f"type {tc.name}: row stream inconsistent with "
                    f"column chunks")
            name = tc.name
            dev_names = [tc.devices[i] for i in tc.dev_idx.tolist()]
            rows = list(tc.values)  # one zero-copy view per row
            if n == 1:
                starts, ends = [0], [1]
                seg_blocks = [int(rb[0])]
            else:
                cuts = np.flatnonzero(rb[1:] != rb[:-1]) + 1
                starts = [0, *cuts.tolist()]
                ends = [*cuts.tolist(), n]
                seg_blocks = rb[np.concatenate(([0], cuts))].tolist()
            for s, e, b in zip(starts, ends, seg_blocks):
                blocks[b].rows[name] = dict(zip(dev_names[s:e],
                                                rows[s:e]))

        host.marks = [
            Mark(time=times_list[b], kind=kind, jobid=jobid)
            for b, kind, jobid in self.header["marks"]
        ]
        return host

    def to_text(self) -> str:
        """Reconstruct the canonical text representation.

        Byte-identical to the source for canonical (writer-produced)
        files; a valid-but-noncanonical source (fractional-second
        trailing zeros, interleaved type runs inside one block)
        round-trips value-identically in canonical form.
        """
        out: list[str] = []
        for k, v in self.header["properties"]:
            out.append(f"${k} {v}\n")
        for line in self.header["schemas"]:
            out.append(line + "\n")

        marks_by_block: dict[int, list[tuple[str, str]]] = {}
        for b, kind, jobid in self.header["marks"]:
            marks_by_block.setdefault(b, []).append((kind, jobid))

        tags = self.header["jobid_tags"]
        times_list = self.times.tolist()
        tag_list = self.tags.tolist()
        row_type = self.row_type.tolist()
        row_block = self.row_block.tolist()
        cursors = [0] * len(self.types)
        dev_lists = [
            [tc.devices[i] for i in tc.dev_idx.tolist()]
            for tc in self.types
        ]
        val_lists = [tc.values.tolist() for tc in self.types]
        names = [tc.name for tc in self.types]

        r = 0
        n_rows = len(row_type)
        for bi, (t, g) in enumerate(zip(times_list, tag_list)):
            out.append(f"{_format_time(t)} {tags[g]}\n")
            for kind, jobid in marks_by_block.get(bi, ()):
                out.append(f"%{kind} {jobid}\n")
            while r < n_rows and row_block[r] == bi:
                ti = row_type[r]
                c = cursors[ti]
                cursors[ti] = c + 1
                vals = " ".join(map(str, val_lists[ti][c]))
                out.append(f"{names[ti]} {dev_lists[ti][c]} {vals}\n")
                r += 1
        return "".join(out)


def _parse_schema_line(line: str) -> TypeSchema:
    schema = _SCHEMA_CACHE.get(line)
    if schema is None:
        schema = _SCHEMA_CACHE[line] = TypeSchema.parse_header_line(line)
    return schema


def read_header(path: Path) -> dict:
    """Read just the header JSON of a v2 file (no chunk mapping).

    This is the cheap metadata path — :meth:`HostArchive.manifest` uses
    it for the ``source_sha256`` fingerprint and the archive-stats
    resume uses ``text_bytes``, neither of which should map the columns.
    The tail sentinel is still checked (one seek), so a truncated file
    is rejected here too rather than surfacing a stale fingerprint.
    """
    try:
        with path.open("rb") as fh:
            prelude = fh.read(16)
            if len(prelude) < 16 or prelude[:8] != _MAGIC:
                raise V2FormatError(f"{path.name}: not a v2 file "
                                    f"(bad magic)")
            version, hdr_len = struct.unpack("<II", prelude[8:16])
            if version != _VERSION:
                raise V2FormatError(
                    f"{path.name}: unsupported v2 version {version}")
            header = json.loads(fh.read(hdr_len).decode("utf-8"))
            fh.seek(-len(_TAIL), 2)
            if fh.read(len(_TAIL)) != _TAIL:
                raise V2FormatError(f"{path.name}: truncated v2 file "
                                    f"(missing tail sentinel)")
            return header
    except V2FormatError:
        raise
    except (OSError, ValueError, UnicodeDecodeError) as e:
        raise V2FormatError(f"{path.name}: unreadable v2 header: "
                            f"{e}") from e


def read_host_day(path: Path, verify: bool = True) -> V2HostDay:
    """Open, validate and map one v2 file.

    The column chunks are presented as zero-copy numpy views over an
    ``mmap`` of the file (the mapping lives as long as any view does).
    *verify* checks every chunk's sha256 — on by default, because the
    binary format has no per-line redundancy for the parser to trip
    over, so the digests are what stands between bit-rot and silently
    wrong numbers.  Any structural damage raises :class:`V2FormatError`.
    """
    try:
        day = _read_host_day(path, verify)
    except V2FormatError:
        raise
    except (OSError, ValueError, KeyError, TypeError, IndexError,
            struct.error) as e:
        raise V2FormatError(
            f"{path.name}: corrupt v2 file: {type(e).__name__}: {e}"
        ) from e
    registry = get_registry()
    registry.counter("archive.v2.files_read").inc()
    registry.counter("archive.v2.chunks_read").inc(day.chunks_read)
    registry.counter("archive.v2.bytes_mapped").inc(day.bytes_mapped)
    return day


def _read_host_day(path: Path, verify: bool) -> V2HostDay:
    """The unwrapped body of :func:`read_host_day`."""
    with path.open("rb") as fh:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    view = memoryview(mm)
    size = len(view)
    if size < 16 + 16 or bytes(view[:8]) != _MAGIC:
        raise V2FormatError(f"{path.name}: not a v2 file (bad magic)")
    version, hdr_len = struct.unpack("<II", view[8:16])
    if version != _VERSION:
        raise V2FormatError(f"{path.name}: unsupported v2 version "
                            f"{version}")
    if bytes(view[size - 8:]) != _TAIL:
        raise V2FormatError(f"{path.name}: truncated v2 file "
                            f"(tail marker missing)")
    (footer_len,) = struct.unpack("<Q", view[size - 16:size - 8])
    footer_off = size - 16 - footer_len
    if footer_len > size or footer_off < 16 + hdr_len:
        raise V2FormatError(f"{path.name}: footer index out of bounds")
    header = json.loads(bytes(view[16:16 + hdr_len]).decode("utf-8"))
    footer = json.loads(
        bytes(view[footer_off:footer_off + footer_len]).decode("utf-8"))

    arrays: dict[str, np.ndarray] = {}
    bytes_mapped = 0
    for entry in footer["chunks"]:
        off, nbytes = entry["offset"], entry["nbytes"]
        if off < 0 or off + nbytes > footer_off:
            raise V2FormatError(
                f"{path.name}: chunk {entry['name']} out of bounds")
        if verify:
            digest = hashlib.sha256(view[off:off + nbytes]).hexdigest()
            if digest != entry["sha256"]:
                raise V2FormatError(
                    f"{path.name}: chunk {entry['name']} digest "
                    f"mismatch (file is corrupt)")
        shape = tuple(entry["shape"])
        count = 1
        for d in shape:
            count *= d
        arr = np.frombuffer(mm, dtype=np.dtype(entry["dtype"]),
                            count=count, offset=off).reshape(shape)
        arrays[entry["name"]] = arr
        bytes_mapped += nbytes

    n_blocks = header["n_blocks"]
    times = arrays["times"]
    tags = arrays["tags"]
    row_type = arrays["row_type"]
    row_block = arrays["row_block"]
    if times.shape != (n_blocks,) or tags.shape != (n_blocks,):
        raise V2FormatError(f"{path.name}: block chunk shape mismatch")
    if row_type.shape != row_block.shape:
        raise V2FormatError(f"{path.name}: row stream shape mismatch")
    if n_blocks > 1 and not bool((times[1:] >= times[:-1]).all()):
        raise V2FormatError(f"{path.name}: non-monotonic timestamps")
    if n_blocks and tags.size and int(tags.max()) >= len(
            header["jobid_tags"]):
        raise V2FormatError(f"{path.name}: jobid tag index out of range")
    if row_block.size and int(row_block.max()) >= n_blocks:
        raise V2FormatError(f"{path.name}: row block index out of range")

    type_infos = header["types"]
    schemas = [_parse_schema_line(line) for line in header["schemas"]]
    if len(schemas) != len(type_infos) or any(
            s.type_name != t["name"]
            for s, t in zip(schemas, type_infos)):
        raise V2FormatError(f"{path.name}: schema/type table mismatch")
    if row_type.size and int(row_type.max()) >= len(type_infos):
        raise V2FormatError(f"{path.name}: row type index out of range")
    counts = np.bincount(row_type, minlength=len(type_infos))
    types: list[_TypeColumns] = []
    for ti, (info, schema) in enumerate(zip(type_infos, schemas)):
        dev_idx = arrays[f"dev/{info['name']}"]
        values = arrays[f"val/{info['name']}"]
        n = info["n_rows"]
        if (dev_idx.shape != (n,) or values.shape != (n, schema.n_values)
                or (ti < counts.size and int(counts[ti]) != n)
                or (ti >= counts.size and n != 0)):
            raise V2FormatError(
                f"{path.name}: type {info['name']} column shapes "
                f"inconsistent")
        if n and int(dev_idx.max()) >= len(info["devices"]):
            raise V2FormatError(
                f"{path.name}: type {info['name']} device index out "
                f"of range")
        types.append(_TypeColumns(
            name=info["name"], schema=schema,
            devices=tuple(info["devices"]), dev_idx=dev_idx,
            values=values))

    # Marks must point at real blocks and carry well-formed kinds.
    for b, kind, _jobid in header["marks"]:
        if not 0 <= b < n_blocks or kind not in ("begin", "end"):
            raise V2FormatError(f"{path.name}: malformed mark entry")

    return V2HostDay(header=header, times=times, tags=tags,
                     row_type=row_type, row_block=row_block, types=types,
                     bytes_mapped=bytes_mapped,
                     chunks_read=len(footer["chunks"]))
