"""On-disk archive of per-host stats files with daily rotation.

Layout mirrors the production deployment::

    <root>/<hostname>/<YYYY-MM-DD>        (current, plain text)
    <root>/<hostname>/<YYYY-MM-DD>.gz     (rotated, compressed)

The archive tracks raw and compressed byte counts so the paper's volume
claims (0.5 MB/node/day raw, ~3x gzip) can be measured directly
(``bench_data_volume``).
"""

from __future__ import annotations

import gzip
import io
from dataclasses import dataclass, field
from pathlib import Path

from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import parse_host_text
from repro.tacc_stats.types import HostData
from repro.util.timeutil import DAY, format_epoch

__all__ = ["HostArchive", "ArchiveStats"]


@dataclass
class ArchiveStats:
    """Volume accounting for one archive."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    file_count: int = 0
    host_days: int = 0

    @property
    def bytes_per_host_day(self) -> float:
        """Raw bytes per node per day — the paper's 0.5 MB figure."""
        if self.host_days == 0:
            return 0.0
        return self.raw_bytes / self.host_days

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.raw_bytes / self.compressed_bytes


class _OpenFile:
    def __init__(self, path: Path, writer: StatsWriter, buffer: io.StringIO):
        self.path = path
        self.writer = writer
        self.buffer = buffer


class HostArchive:
    """Rotating per-host file store.

    Parameters
    ----------
    root:
        Directory to write under (created if missing).
    compress:
        gzip files at rotation/close time.
    """

    def __init__(self, root: str | Path, compress: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self._open: dict[str, tuple[int, _OpenFile]] = {}
        self.stats = ArchiveStats()

    # -- writing ---------------------------------------------------------------

    def writer(self, hostname: str, t: float,
               properties: dict[str, str] | None = None) -> StatsWriter:
        """The current writer for *hostname*, rotating at day boundaries.

        Note: rotation starts a fresh file with its own header, so the
        caller (the daemon) must re-register schemas on each new writer —
        exactly what the real tool does on its daily restart.
        """
        day = int(t // DAY)
        current = self._open.get(hostname)
        if current is not None and current[0] == day:
            return current[1].writer
        if current is not None:
            self._close_file(hostname, current[1])
        date = format_epoch(day * DAY).split("T")[0]
        hostdir = self.root / hostname
        hostdir.mkdir(parents=True, exist_ok=True)
        path = hostdir / date
        buffer = io.StringIO()
        writer = StatsWriter(buffer, hostname, properties or {})
        of = _OpenFile(path, writer, buffer)
        self._open[hostname] = (day, of)
        return writer

    def _close_file(self, hostname: str, of: _OpenFile) -> None:
        text = of.buffer.getvalue()
        raw = text.encode("utf-8")
        self.stats.raw_bytes += len(raw)
        self.stats.file_count += 1
        self.stats.host_days += 1
        if self.compress:
            path = of.path.with_suffix(of.path.suffix + ".gz")
            data = gzip.compress(raw, compresslevel=6)
            path.write_bytes(data)
            self.stats.compressed_bytes += len(data)
        else:
            of.path.write_text(text)
            self.stats.compressed_bytes += len(raw)

    def close(self) -> ArchiveStats:
        """Flush all open files; returns the final volume accounting."""
        for hostname, (_, of) in sorted(self._open.items()):
            self._close_file(hostname, of)
        self._open.clear()
        return self.stats

    # -- reading ---------------------------------------------------------------

    def host_files(self, hostname: str) -> list[Path]:
        """All archived files for a host, in date order."""
        hostdir = self.root / hostname
        if not hostdir.is_dir():
            return []
        return sorted(hostdir.iterdir())

    def hostnames(self) -> list[str]:
        """All hosts present in the archive, sorted."""
        return sorted(p.name for p in self.root.iterdir() if p.is_dir())

    @staticmethod
    def read_file(path: Path) -> str:
        """Decompressed text of one archived file (gz-aware)."""
        if path.suffix == ".gz":
            return gzip.decompress(path.read_bytes()).decode("utf-8")
        return path.read_text()

    def read_host(self, hostname: str,
                  allow_truncated: bool = False) -> HostData:
        """Parse and merge all of a host's files into one stream.

        Empty files (the node was down for the whole day) are skipped;
        if *every* file is empty the result is an empty stream carrying
        the directory's hostname.
        """
        files = self.host_files(hostname)
        if not files:
            raise FileNotFoundError(f"no archived files for {hostname}")
        merged: HostData | None = None
        for path in files:
            data = parse_host_text(self.read_file(path),
                                   allow_truncated=allow_truncated)
            if not data.hostname:
                # parse_host_text only leaves the hostname unset for a
                # fully empty file; a non-empty headerless file raises.
                continue
            if merged is None:
                merged = data
            else:
                merged.merge_from(data)
        return merged if merged is not None else HostData(hostname=hostname)

    def iter_hosts(self, allow_truncated: bool = False):
        """Yield each host's merged :class:`HostData`, lazily, in sorted
        hostname order.

        This is the streaming counterpart of calling :meth:`read_host`
        for every hostname: only one host's parsed data is alive at a
        time, so ingest memory stays bounded by the largest host rather
        than the whole archive.
        """
        for hostname in self.hostnames():
            yield self.read_host(hostname, allow_truncated=allow_truncated)
