"""On-disk archive of per-host stats files with periodic rotation.

Layout mirrors the production deployment::

    <root>/<hostname>/<YYYY-MM-DD>        (current, plain text)
    <root>/<hostname>/<YYYY-MM-DD>.gz     (rotated, compressed)
    <root>/<hostname>/<YYYY-MM-DD>.v2     (binary columnar, v2)

Rotation defaults to the production daily cadence; a live streaming
deployment passes ``rotate_seconds`` to cut sub-day segments instead
(files named ``YYYY-MM-DDTHHMMSS`` after the segment's start instant).
The chosen period is persisted in an ``archive.json`` sidecar at the
root so re-opening a segmented archive needs no knob, and every
consumer of file labels goes through
:func:`repro.util.timeutil.period_label` /
:func:`~repro.util.timeutil.label_to_period_index`, which degrade to
the historical date stamps when the period is one day.

The archive tracks raw and compressed byte counts so the paper's volume
claims (0.5 MB/node/day raw, ~3x gzip) can be measured directly
(``bench_data_volume``).

Formats are detected per file, so text and v2 host-days coexist in one
root (e.g. mid-conversion, or a v2 archive quarantining an unconvertible
text day).  ``archive_format="v2"`` makes the *writer* emit columnar
files (see :mod:`repro.tacc_stats.columnar`); readers need no knob.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
from collections.abc import Callable, Collection
from dataclasses import dataclass
from pathlib import Path

from repro.errors import (
    QUARANTINE_DIRNAME,
    ErrorPolicy,
    QuarantinedRecord,
)
from repro.tacc_stats.columnar import (
    V2_SUFFIX,
    V2FormatError,
    encode_host_text,
    is_v2_path,
    read_header,
    read_host_day,
    source_fingerprint_for_text,
)
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import ParseError, ParseFault, parse_host_text
from repro.tacc_stats.types import HostData
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import span
from repro.util.timeutil import DAY, period_label

__all__ = ["HostArchive", "ArchiveStats", "HostReadResult",
           "FileFingerprint", "ARCHIVE_META_FILENAME"]

#: Root sidecar recording a non-default rotation period, so reopening a
#: segmented archive infers its cadence without a knob.
ARCHIVE_META_FILENAME = "archive.json"


def _file_day(path: Path) -> str:
    """The rotation label an archived file's name carries
    (``YYYY-MM-DD`` for day archives, ``YYYY-MM-DDTHHMMSS`` for
    sub-day segments)."""
    name = path.name
    if name.endswith(".gz"):
        return name[:-3]
    if name.endswith(V2_SUFFIX):
        return name[: -len(V2_SUFFIX)]
    return name


def _raw_size(path: Path) -> int:
    """Uncompressed byte count of an archived file without inflating it.

    For rotated ``.gz`` files this reads the ISIZE trailer (last four
    bytes, little-endian); host-day files are far below 4 GiB so the
    mod-2^32 caveat never bites.  v2 columnar files record the source
    text's byte count in their header (``text_bytes``), so "raw" keeps
    meaning *text-equivalent* bytes in every volume figure regardless
    of the on-disk format.
    """
    size = path.stat().st_size
    if is_v2_path(path):
        try:
            return int(read_header(path)["text_bytes"])
        except (V2FormatError, KeyError, TypeError, ValueError):
            return size  # corrupt header: fall back to stored size
    if not path.name.endswith(".gz"):
        return size
    if size < 4:
        return 0
    with path.open("rb") as fh:
        fh.seek(-4, io.SEEK_END)
        return int.from_bytes(fh.read(4), "little")


def _suffix_kind(path: Path) -> str:
    """``"v2"``, ``"gz"`` or ``"text"`` from a file's name."""
    if is_v2_path(path):
        return "v2"
    return "gz" if path.name.endswith(".gz") else "text"


#: Precedence when one host-day exists in several representations.
_FORMAT_RANK = {"text": 0, "gz": 1, "v2": 2}


@dataclass(frozen=True)
class FileFingerprint:
    """Identity of one archived host-day file, for delta classification.

    ``size``/``mtime_ns`` are recorded for observability; ``sha256`` (of
    the stored bytes) is the authoritative change detector, so touching
    a file without altering content does not trigger a re-parse.
    """

    hostname: str
    day: str
    path: str
    size: int
    mtime_ns: int
    sha256: str


@dataclass(frozen=True)
class HostReadResult:
    """Outcome of a policy-aware host read.

    ``status`` is ``"ok"`` (parsed clean), ``"degraded"`` (repair policy
    salvaged the host with some records quarantined), or ``"dropped"``
    (the host is excluded; ``data`` is ``None``).  ``records`` carries
    full provenance for everything quarantined.
    """

    hostname: str
    data: HostData | None
    records: tuple[QuarantinedRecord, ...]
    status: str


@dataclass
class ArchiveStats:
    """Volume accounting for one archive."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    file_count: int = 0
    host_days: int = 0

    @property
    def bytes_per_host_day(self) -> float:
        """Raw bytes per node per day — the paper's 0.5 MB figure."""
        if self.host_days == 0:
            return 0.0
        return self.raw_bytes / self.host_days

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.raw_bytes / self.compressed_bytes


class _OpenFile:
    def __init__(self, path: Path, writer: StatsWriter, buffer: io.StringIO):
        self.path = path
        self.writer = writer
        self.buffer = buffer


class HostArchive:
    """Rotating per-host file store.

    Parameters
    ----------
    root:
        Directory to write under (created if missing).
    compress:
        gzip files at rotation/close time (text format only).
    archive_format:
        ``"text"`` (default) writes the paper-faithful self-describing
        text format; ``"v2"`` writes binary columnar files
        (:mod:`repro.tacc_stats.columnar`).  Reading always autodetects
        per file, so the knob only affects new writes.
    resume_stats:
        Seed :class:`ArchiveStats` from files already on disk the first
        time ``stats`` (or a writer) is touched, so re-opening an
        existing root resumes volume accounting instead of restarting
        from zero.  Multi-worker replay passes ``False``: each worker
        holds a private session-scoped tally that the coordinator sums,
        and eager seeding over the shared, concurrently-growing root
        would double-count sibling workers' files.
    rotate_seconds:
        Rotation period in facility seconds (default one day, the
        production cadence).  A non-default period is persisted in the
        :data:`ARCHIVE_META_FILENAME` sidecar; reopening the root with
        the default adopts the stored period, while passing a
        *different* explicit period raises (a segmented archive's
        labels only make sense at the cadence that wrote them).
    """

    def __init__(self, root: str | Path, compress: bool = True,
                 resume_stats: bool = True, archive_format: str = "text",
                 rotate_seconds: int | float = DAY):
        if archive_format not in ("text", "v2"):
            raise ValueError(
                f"archive_format must be 'text' or 'v2', "
                f"got {archive_format!r}")
        rotate = int(rotate_seconds)
        if rotate <= 0 or rotate != rotate_seconds:
            raise ValueError(f"rotate_seconds must be a positive whole "
                             f"number of seconds, got {rotate_seconds!r}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        meta_path = self.root / ARCHIVE_META_FILENAME
        if meta_path.is_file():
            stored = int(json.loads(meta_path.read_text())
                         ["rotate_seconds"])
            if rotate != DAY and rotate != stored:
                raise ValueError(
                    f"archive at {self.root} rotates every {stored}s "
                    f"(per its {ARCHIVE_META_FILENAME}); cannot reopen "
                    f"it with rotate_seconds={rotate}")
            rotate = stored
        elif rotate != DAY:
            meta_path.write_text(
                json.dumps({"rotate_seconds": rotate}) + "\n")
        self.rotate_seconds = rotate
        self.compress = compress
        self.archive_format = archive_format
        self.resume_stats = resume_stats
        self._open: dict[str, tuple[int, _OpenFile]] = {}
        #: hostname -> callable(writer, text, sha, kind) -> bytes | None.
        #: The vectorized synthesis engine registers one per host so v2
        #: files are encoded from its column arrays instead of re-parsing
        #: the rendered text; a None return falls back to the text path.
        self._v2_encoders: dict[str, "Callable[..., bytes | None]"] = {}
        self._stats: ArchiveStats | None = None
        #: stored path -> (raw, stored) contribution already counted, so
        #: a resumed writer replacing a host-day on disk swaps its
        #: contribution instead of adding on top.
        self._counted: dict[Path, tuple[int, int]] = {}

    @property
    def stats(self) -> ArchiveStats:
        """Volume accounting, lazily seeded from disk when resuming."""
        if self._stats is None:
            self._stats = ArchiveStats()
            if self.resume_stats:
                self._seed_stats()
        return self._stats

    def _seed_stats(self) -> None:
        """Fold every file already on disk into the fresh tally."""
        assert self._stats is not None
        for hostname in self.hostnames():
            for path in self.host_files(hostname):
                raw, stored = _raw_size(path), path.stat().st_size
                self._stats.raw_bytes += raw
                self._stats.compressed_bytes += stored
                self._stats.file_count += 1
                self._stats.host_days += 1
                self._counted[path] = (raw, stored)

    # -- writing ---------------------------------------------------------------

    def writer(self, hostname: str, t: float,
               properties: dict[str, str] | None = None) -> StatsWriter:
        """The current writer for *hostname*, rotating at period
        boundaries (days by default; see ``rotate_seconds``).

        Note: rotation starts a fresh file with its own header, so the
        caller (the daemon) must re-register schemas on each new writer —
        exactly what the real tool does on its daily restart.
        """
        seg = int(t // self.rotate_seconds)
        current = self._open.get(hostname)
        if current is not None and current[0] == seg:
            return current[1].writer
        if current is not None:
            self._close_file(hostname, current[1])
        label = period_label(seg, self.rotate_seconds)
        hostdir = self.root / hostname
        hostdir.mkdir(parents=True, exist_ok=True)
        path = hostdir / label
        buffer = io.StringIO()
        writer = StatsWriter(buffer, hostname, properties or {})
        of = _OpenFile(path, writer, buffer)
        self._open[hostname] = (seg, of)
        return writer

    def set_v2_encoder(
        self, hostname: str,
        encoder: Callable[[StatsWriter, str, str, str], bytes | None],
    ) -> None:
        """Register a direct v2 encoder for *hostname*'s files.

        *encoder* is called at file close as ``encoder(writer, text,
        source_sha256, source_kind)`` and returns the encoded v2 bytes,
        or None to fall back to re-parsing the rendered text
        (:func:`~repro.tacc_stats.columnar.encode_host_text`).  The
        vectorized synthesis engine uses this to write its column
        arrays straight into v2 chunks.  No-op unless
        ``archive_format="v2"``.
        """
        self._v2_encoders[hostname] = encoder

    def flush_before(self, t: float) -> int:
        """Write to disk every open file whose rotation segment ended
        at or before *t*; returns how many files were closed.

        The live micro-batcher calls this at each batch boundary:
        rotation alone only closes a host's previous segment when its
        *next* write arrives, so a host idle across the boundary would
        otherwise keep a completed segment buffered in memory where the
        ingest manifest cannot see it.  Open segments that *t* still
        falls inside are left untouched.
        """
        boundary = int(t // self.rotate_seconds)
        closed = 0
        for hostname, (seg, of) in sorted(self._open.items()):
            if seg < boundary:
                self._close_file(hostname, of)
                del self._open[hostname]
                closed += 1
        return closed

    def _close_file(self, hostname: str, of: _OpenFile) -> None:
        text = of.buffer.getvalue()
        raw = text.encode("utf-8")
        if self.archive_format == "v2":
            path = of.path.with_suffix(of.path.suffix + V2_SUFFIX)
            # The header's source fingerprint is what the *text* path
            # (at this compress setting) would have stored, so a v2
            # archive is ledger-identical to the text archive of the
            # same data (manifest() reports this digest for v2 files).
            sha, kind = source_fingerprint_for_text(text, self.compress)
            data = None
            encoder = self._v2_encoders.get(hostname)
            if encoder is not None:
                data = encoder(of.writer, text, sha, kind)
            if data is None:
                data = encode_host_text(text, source_sha256=sha,
                                        source_kind=kind)
            path.write_bytes(data)
            stored = len(data)
        elif self.compress:
            path = of.path.with_suffix(of.path.suffix + ".gz")
            # mtime=0 keeps the stored bytes a pure function of the
            # content, so the manifest's sha256 is stable across
            # re-writes of identical data (append mode depends on it).
            data = gzip.compress(raw, compresslevel=6, mtime=0)
            path.write_bytes(data)
            stored = len(data)
        else:
            path = of.path
            path.write_text(text)
            stored = len(raw)
        stats = self.stats
        counted = self._counted.pop(path, None)
        if counted is not None:
            # Rewriting a host-day that was already tallied (seeded from
            # disk or written earlier this session): swap, don't add.
            stats.raw_bytes -= counted[0]
            stats.compressed_bytes -= counted[1]
            stats.file_count -= 1
            stats.host_days -= 1
        stats.raw_bytes += len(raw)
        stats.compressed_bytes += stored
        stats.file_count += 1
        stats.host_days += 1
        self._counted[path] = (len(raw), stored)
        registry = get_registry()
        registry.counter("archive.files_written").inc()
        registry.counter("archive.bytes_raw").inc(len(raw))
        registry.counter("archive.bytes_compressed").inc(stored)

    def close(self) -> ArchiveStats:
        """Flush all open files; returns the final volume accounting."""
        for hostname, (_, of) in sorted(self._open.items()):
            self._close_file(hostname, of)
        self._open.clear()
        return self.stats

    # -- reading ---------------------------------------------------------------

    def host_files(self, hostname: str,
                   days: Collection[str] | None = None) -> list[Path]:
        """Archived files for a host, in date order.

        *days* (``YYYY-MM-DD`` stamps) restricts the listing to those
        host-days — the delta-ingest path uses it to touch only the
        files its ledger classified as worth parsing.

        A day present in more than one representation (e.g. an
        interrupted conversion left ``2021-01-01.gz`` next to
        ``2021-01-01.v2``) is listed once, preferring ``.v2`` over
        ``.gz`` over plain text, so the host-day is never double-read.
        """
        hostdir = self.root / hostname
        if not hostdir.is_dir():
            return []
        by_day: dict[str, Path] = {}
        for p in sorted(hostdir.iterdir()):
            day = _file_day(p)
            prev = by_day.get(day)
            if prev is None or _FORMAT_RANK[_suffix_kind(p)] > \
                    _FORMAT_RANK[_suffix_kind(prev)]:
                by_day[day] = p
        files = [by_day[d] for d in sorted(by_day)]
        if days is None:
            return files
        wanted = set(days)
        return [p for p in files if _file_day(p) in wanted]

    def manifest(self, hosts: Collection[str] | None = None,
                 ) -> dict[tuple[str, str], FileFingerprint]:
        """Fingerprint every archived host-day file.

        Returns ``{(hostname, day): FileFingerprint}`` so an incremental
        ingest can classify each file as new (key absent from the
        ledger), unchanged (hash matches), or mutated (hash differs).
        Hashing reads the stored bytes — no decompression — so a
        manifest pass over N days of history costs I/O, not parsing.

        For v2 columnar files the fingerprint is the header's
        ``source_sha256`` — the digest of the bytes the *text* path
        stored (or would have stored) for the same host-day.  That
        makes the ledger format-agnostic: converting a text archive to
        v2 changes no fingerprints, so ``ingest(mode="append")`` over a
        freshly converted archive consumes zero files.  A v2 file whose
        header is unreadable falls back to hashing its stored bytes,
        which the delta plan then classifies as mutated — exactly the
        "re-parse and let the error policy decide" outcome corruption
        deserves.
        """
        out: dict[tuple[str, str], FileFingerprint] = {}
        with span("archive.manifest"):
            for hostname in sorted(hosts) if hosts is not None \
                    else self.hostnames():
                for path in self.host_files(hostname):
                    st = path.stat()
                    digest = None
                    if is_v2_path(path):
                        try:
                            digest = str(
                                read_header(path)["source_sha256"])
                        except (V2FormatError, KeyError, TypeError):
                            digest = None
                    if digest is None:
                        digest = hashlib.sha256(
                            path.read_bytes()).hexdigest()
                    day = _file_day(path)
                    out[(hostname, day)] = FileFingerprint(
                        hostname=hostname, day=day, path=str(path),
                        size=st.st_size, mtime_ns=st.st_mtime_ns,
                        sha256=digest)
        get_registry().counter("archive.manifest_files").inc(len(out))
        return out

    def hostnames(self) -> list[str]:
        """All hosts present in the archive, sorted.

        The reserved ``quarantine/`` sidecar directory (where a
        fault-tolerant ingest writes its report) is never a host.
        """
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and p.name != QUARANTINE_DIRNAME)

    @staticmethod
    def read_file(path: Path) -> str:
        """Text of one archived file (gz- and v2-aware).

        For v2 files this reconstructs the canonical text
        representation (``repro-convert`` back to text uses it); the
        fast ingest path goes straight to column views instead via
        :meth:`_load_file`.
        """
        if is_v2_path(path):
            return read_host_day(path).to_text()
        if path.suffix == ".gz":
            return gzip.decompress(path.read_bytes()).decode("utf-8")
        return path.read_text()

    @staticmethod
    def _load_file(path: Path, allow_truncated: bool = False,
                   faults: list[ParseFault] | None = None) -> HostData:
        """Parse one archived file into :class:`HostData`, dispatching
        on format: text goes through the line parser, v2 maps straight
        to column views (no text reconstruction, no parsing).

        v2 damage raises :class:`V2FormatError`, a
        :class:`ParseError` subclass, so callers' error handling is
        format-blind.  ``faults`` (repair policy) only applies to text:
        a v2 file is digest-verified whole — it is either pristine or
        quarantined entire, never salvaged line-by-line.
        """
        if is_v2_path(path):
            return read_host_day(path).to_host_data()
        return parse_host_text(HostArchive.read_file(path),
                               allow_truncated=allow_truncated,
                               faults=faults)

    def read_host(self, hostname: str,
                  allow_truncated: bool = False,
                  days: Collection[str] | None = None) -> HostData:
        """Parse and merge a host's files (optionally only *days*) into
        one stream.

        Empty files (the node was down for the whole day) are skipped;
        if *every* file is empty the result is an empty stream carrying
        the directory's hostname.
        """
        files = self.host_files(hostname, days=days)
        if not files:
            raise FileNotFoundError(f"no archived files for {hostname}")
        merged: HostData | None = None
        with span("ingest.parse", host=hostname):
            for path in files:
                data = self._load_file(path,
                                       allow_truncated=allow_truncated)
                if not data.hostname:
                    # parse_host_text only leaves the hostname unset for
                    # a fully empty file; a non-empty headerless file
                    # raises.
                    continue
                if merged is None:
                    merged = data
                else:
                    merged.merge_from(data)
        return merged if merged is not None else HostData(hostname=hostname)

    def read_host_checked(self, hostname: str,
                          allow_truncated: bool = False,
                          policy: str = ErrorPolicy.STRICT,
                          days: Collection[str] | None = None,
                          ) -> HostReadResult:
        """Policy-aware :meth:`read_host`: never raises for malformed
        data except under the ``strict`` policy.

        * ``strict`` — identical to :meth:`read_host` (the first
          malformed record raises :class:`ParseError`).
        * ``quarantine`` — every fault in any of the host's files drops
          the *whole host* (``data=None``), so an ingest of the archive
          is byte-identical to ingesting only the clean hosts.  All
          faults are enumerated first so the quarantine report carries
          complete provenance, not just the first offender.
        * ``repair`` — parseable lines are salvaged per file; the host
          loads as ``degraded`` with each skipped record quarantined.
          A file that is unreadable end-to-end (corrupt gzip stream,
          undecodable bytes, or no ``$hostname`` header) is quarantined
          whole (``lineno=None``) and the remaining files still load.
        """
        policy = ErrorPolicy(policy)
        if policy is ErrorPolicy.STRICT:
            data = self.read_host(hostname, allow_truncated=allow_truncated,
                                  days=days)
            return HostReadResult(hostname, data, (), "ok")

        files = self.host_files(hostname, days=days)
        if not files:
            raise FileNotFoundError(f"no archived files for {hostname}")
        records: list[QuarantinedRecord] = []
        merged: HostData | None = None
        with span("ingest.parse", host=hostname):
            for path in files:
                faults: list[ParseFault] = []
                try:
                    data = self._load_file(path,
                                           allow_truncated=allow_truncated,
                                           faults=faults)
                except (ParseError, OSError, UnicodeDecodeError) as e:
                    records.append(QuarantinedRecord(
                        hostname=hostname, path=str(path), lineno=None,
                        kind="unreadable_file",
                        error=f"{type(e).__name__}: {e}",
                    ))
                    continue
                records.extend(
                    QuarantinedRecord(hostname=hostname, path=str(path),
                                      lineno=f.lineno,
                                      kind="malformed_record",
                                      error=f.error, text=f.text)
                    for f in faults
                )
                if not data.hostname:
                    continue  # fully empty file (node down all day)
                if data.hostname != hostname:
                    # The directory name is authoritative; a file
                    # claiming a different host has a corrupted header
                    # (and must not become the merge base for the real
                    # host's data).
                    records.append(QuarantinedRecord(
                        hostname=hostname, path=str(path), lineno=None,
                        kind="hostname_mismatch",
                        error=f"file claims hostname {data.hostname!r}",
                    ))
                    continue
                if merged is None:
                    merged = data
                else:
                    try:
                        merged.merge_from(data)
                    except ValueError as e:
                        # Hostname mismatch / schema drift: a corrupted
                        # header survived the line-level repair, so the
                        # whole file is quarantined instead.
                        records.append(QuarantinedRecord(
                            hostname=hostname, path=str(path), lineno=None,
                            kind="unmergeable_file", error=str(e),
                        ))
        if merged is None:
            merged = HostData(hostname=hostname)

        if policy is ErrorPolicy.QUARANTINE and records:
            return HostReadResult(hostname, None, tuple(records), "dropped")
        status = "degraded" if records else "ok"
        return HostReadResult(hostname, merged, tuple(records), status)

    def iter_hosts(self, allow_truncated: bool = False,
                   policy: str = ErrorPolicy.STRICT):
        """Yield each host's merged :class:`HostData`, lazily, in sorted
        hostname order.

        This is the streaming counterpart of calling :meth:`read_host`
        for every hostname: only one host's parsed data is alive at a
        time, so ingest memory stays bounded by the largest host rather
        than the whole archive.  Under a non-strict *policy* the yield
        is a :class:`HostReadResult` per host (dropped hosts included,
        with ``data=None``); under ``strict`` it stays plain
        :class:`HostData` for backward compatibility.
        """
        policy = ErrorPolicy(policy)
        for hostname in self.hostnames():
            if policy is ErrorPolicy.STRICT:
                yield self.read_host(hostname,
                                     allow_truncated=allow_truncated)
            else:
                yield self.read_host_checked(
                    hostname, allow_truncated=allow_truncated, policy=policy)
