"""On-disk archive of per-host stats files with daily rotation.

Layout mirrors the production deployment::

    <root>/<hostname>/<YYYY-MM-DD>        (current, plain text)
    <root>/<hostname>/<YYYY-MM-DD>.gz     (rotated, compressed)

The archive tracks raw and compressed byte counts so the paper's volume
claims (0.5 MB/node/day raw, ~3x gzip) can be measured directly
(``bench_data_volume``).
"""

from __future__ import annotations

import gzip
import hashlib
import io
from collections.abc import Collection
from dataclasses import dataclass
from pathlib import Path

from repro.errors import (
    QUARANTINE_DIRNAME,
    ErrorPolicy,
    QuarantinedRecord,
)
from repro.tacc_stats.format import StatsWriter
from repro.tacc_stats.parser import ParseError, ParseFault, parse_host_text
from repro.tacc_stats.types import HostData
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import span
from repro.util.timeutil import DAY, format_epoch

__all__ = ["HostArchive", "ArchiveStats", "HostReadResult", "FileFingerprint"]


def _file_day(path: Path) -> str:
    """The ``YYYY-MM-DD`` stamp an archived file's name carries."""
    return path.name[:-3] if path.name.endswith(".gz") else path.name


def _raw_size(path: Path) -> int:
    """Uncompressed byte count of an archived file without inflating it.

    For rotated ``.gz`` files this reads the ISIZE trailer (last four
    bytes, little-endian); host-day files are far below 4 GiB so the
    mod-2^32 caveat never bites.
    """
    size = path.stat().st_size
    if not path.name.endswith(".gz"):
        return size
    if size < 4:
        return 0
    with path.open("rb") as fh:
        fh.seek(-4, io.SEEK_END)
        return int.from_bytes(fh.read(4), "little")


@dataclass(frozen=True)
class FileFingerprint:
    """Identity of one archived host-day file, for delta classification.

    ``size``/``mtime_ns`` are recorded for observability; ``sha256`` (of
    the stored bytes) is the authoritative change detector, so touching
    a file without altering content does not trigger a re-parse.
    """

    hostname: str
    day: str
    path: str
    size: int
    mtime_ns: int
    sha256: str


@dataclass(frozen=True)
class HostReadResult:
    """Outcome of a policy-aware host read.

    ``status`` is ``"ok"`` (parsed clean), ``"degraded"`` (repair policy
    salvaged the host with some records quarantined), or ``"dropped"``
    (the host is excluded; ``data`` is ``None``).  ``records`` carries
    full provenance for everything quarantined.
    """

    hostname: str
    data: HostData | None
    records: tuple[QuarantinedRecord, ...]
    status: str


@dataclass
class ArchiveStats:
    """Volume accounting for one archive."""

    raw_bytes: int = 0
    compressed_bytes: int = 0
    file_count: int = 0
    host_days: int = 0

    @property
    def bytes_per_host_day(self) -> float:
        """Raw bytes per node per day — the paper's 0.5 MB figure."""
        if self.host_days == 0:
            return 0.0
        return self.raw_bytes / self.host_days

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.raw_bytes / self.compressed_bytes


class _OpenFile:
    def __init__(self, path: Path, writer: StatsWriter, buffer: io.StringIO):
        self.path = path
        self.writer = writer
        self.buffer = buffer


class HostArchive:
    """Rotating per-host file store.

    Parameters
    ----------
    root:
        Directory to write under (created if missing).
    compress:
        gzip files at rotation/close time.
    resume_stats:
        Seed :class:`ArchiveStats` from files already on disk the first
        time ``stats`` (or a writer) is touched, so re-opening an
        existing root resumes volume accounting instead of restarting
        from zero.  Multi-worker replay passes ``False``: each worker
        holds a private session-scoped tally that the coordinator sums,
        and eager seeding over the shared, concurrently-growing root
        would double-count sibling workers' files.
    """

    def __init__(self, root: str | Path, compress: bool = True,
                 resume_stats: bool = True):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self.resume_stats = resume_stats
        self._open: dict[str, tuple[int, _OpenFile]] = {}
        self._stats: ArchiveStats | None = None
        #: stored path -> (raw, stored) contribution already counted, so
        #: a resumed writer replacing a host-day on disk swaps its
        #: contribution instead of adding on top.
        self._counted: dict[Path, tuple[int, int]] = {}

    @property
    def stats(self) -> ArchiveStats:
        """Volume accounting, lazily seeded from disk when resuming."""
        if self._stats is None:
            self._stats = ArchiveStats()
            if self.resume_stats:
                self._seed_stats()
        return self._stats

    def _seed_stats(self) -> None:
        """Fold every file already on disk into the fresh tally."""
        assert self._stats is not None
        for hostname in self.hostnames():
            for path in self.host_files(hostname):
                raw, stored = _raw_size(path), path.stat().st_size
                self._stats.raw_bytes += raw
                self._stats.compressed_bytes += stored
                self._stats.file_count += 1
                self._stats.host_days += 1
                self._counted[path] = (raw, stored)

    # -- writing ---------------------------------------------------------------

    def writer(self, hostname: str, t: float,
               properties: dict[str, str] | None = None) -> StatsWriter:
        """The current writer for *hostname*, rotating at day boundaries.

        Note: rotation starts a fresh file with its own header, so the
        caller (the daemon) must re-register schemas on each new writer —
        exactly what the real tool does on its daily restart.
        """
        day = int(t // DAY)
        current = self._open.get(hostname)
        if current is not None and current[0] == day:
            return current[1].writer
        if current is not None:
            self._close_file(hostname, current[1])
        date = format_epoch(day * DAY).split("T")[0]
        hostdir = self.root / hostname
        hostdir.mkdir(parents=True, exist_ok=True)
        path = hostdir / date
        buffer = io.StringIO()
        writer = StatsWriter(buffer, hostname, properties or {})
        of = _OpenFile(path, writer, buffer)
        self._open[hostname] = (day, of)
        return writer

    def _close_file(self, hostname: str, of: _OpenFile) -> None:
        text = of.buffer.getvalue()
        raw = text.encode("utf-8")
        if self.compress:
            path = of.path.with_suffix(of.path.suffix + ".gz")
            # mtime=0 keeps the stored bytes a pure function of the
            # content, so the manifest's sha256 is stable across
            # re-writes of identical data (append mode depends on it).
            data = gzip.compress(raw, compresslevel=6, mtime=0)
            path.write_bytes(data)
            stored = len(data)
        else:
            path = of.path
            path.write_text(text)
            stored = len(raw)
        stats = self.stats
        counted = self._counted.pop(path, None)
        if counted is not None:
            # Rewriting a host-day that was already tallied (seeded from
            # disk or written earlier this session): swap, don't add.
            stats.raw_bytes -= counted[0]
            stats.compressed_bytes -= counted[1]
            stats.file_count -= 1
            stats.host_days -= 1
        stats.raw_bytes += len(raw)
        stats.compressed_bytes += stored
        stats.file_count += 1
        stats.host_days += 1
        self._counted[path] = (len(raw), stored)
        registry = get_registry()
        registry.counter("archive.files_written").inc()
        registry.counter("archive.bytes_raw").inc(len(raw))
        registry.counter("archive.bytes_compressed").inc(stored)

    def close(self) -> ArchiveStats:
        """Flush all open files; returns the final volume accounting."""
        for hostname, (_, of) in sorted(self._open.items()):
            self._close_file(hostname, of)
        self._open.clear()
        return self.stats

    # -- reading ---------------------------------------------------------------

    def host_files(self, hostname: str,
                   days: Collection[str] | None = None) -> list[Path]:
        """Archived files for a host, in date order.

        *days* (``YYYY-MM-DD`` stamps) restricts the listing to those
        host-days — the delta-ingest path uses it to touch only the
        files its ledger classified as worth parsing.
        """
        hostdir = self.root / hostname
        if not hostdir.is_dir():
            return []
        files = sorted(hostdir.iterdir())
        if days is None:
            return files
        wanted = set(days)
        return [p for p in files if _file_day(p) in wanted]

    def manifest(self, hosts: Collection[str] | None = None,
                 ) -> dict[tuple[str, str], FileFingerprint]:
        """Fingerprint every archived host-day file.

        Returns ``{(hostname, day): FileFingerprint}`` so an incremental
        ingest can classify each file as new (key absent from the
        ledger), unchanged (hash matches), or mutated (hash differs).
        Hashing reads the stored bytes — no decompression — so a
        manifest pass over N days of history costs I/O, not parsing.
        """
        out: dict[tuple[str, str], FileFingerprint] = {}
        with span("archive.manifest"):
            for hostname in sorted(hosts) if hosts is not None \
                    else self.hostnames():
                for path in self.host_files(hostname):
                    st = path.stat()
                    digest = hashlib.sha256(path.read_bytes()).hexdigest()
                    day = _file_day(path)
                    out[(hostname, day)] = FileFingerprint(
                        hostname=hostname, day=day, path=str(path),
                        size=st.st_size, mtime_ns=st.st_mtime_ns,
                        sha256=digest)
        get_registry().counter("archive.manifest_files").inc(len(out))
        return out

    def hostnames(self) -> list[str]:
        """All hosts present in the archive, sorted.

        The reserved ``quarantine/`` sidecar directory (where a
        fault-tolerant ingest writes its report) is never a host.
        """
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and p.name != QUARANTINE_DIRNAME)

    @staticmethod
    def read_file(path: Path) -> str:
        """Decompressed text of one archived file (gz-aware)."""
        if path.suffix == ".gz":
            return gzip.decompress(path.read_bytes()).decode("utf-8")
        return path.read_text()

    def read_host(self, hostname: str,
                  allow_truncated: bool = False,
                  days: Collection[str] | None = None) -> HostData:
        """Parse and merge a host's files (optionally only *days*) into
        one stream.

        Empty files (the node was down for the whole day) are skipped;
        if *every* file is empty the result is an empty stream carrying
        the directory's hostname.
        """
        files = self.host_files(hostname, days=days)
        if not files:
            raise FileNotFoundError(f"no archived files for {hostname}")
        merged: HostData | None = None
        with span("ingest.parse", host=hostname):
            for path in files:
                data = parse_host_text(self.read_file(path),
                                       allow_truncated=allow_truncated)
                if not data.hostname:
                    # parse_host_text only leaves the hostname unset for
                    # a fully empty file; a non-empty headerless file
                    # raises.
                    continue
                if merged is None:
                    merged = data
                else:
                    merged.merge_from(data)
        return merged if merged is not None else HostData(hostname=hostname)

    def read_host_checked(self, hostname: str,
                          allow_truncated: bool = False,
                          policy: str = ErrorPolicy.STRICT,
                          days: Collection[str] | None = None,
                          ) -> HostReadResult:
        """Policy-aware :meth:`read_host`: never raises for malformed
        data except under the ``strict`` policy.

        * ``strict`` — identical to :meth:`read_host` (the first
          malformed record raises :class:`ParseError`).
        * ``quarantine`` — every fault in any of the host's files drops
          the *whole host* (``data=None``), so an ingest of the archive
          is byte-identical to ingesting only the clean hosts.  All
          faults are enumerated first so the quarantine report carries
          complete provenance, not just the first offender.
        * ``repair`` — parseable lines are salvaged per file; the host
          loads as ``degraded`` with each skipped record quarantined.
          A file that is unreadable end-to-end (corrupt gzip stream,
          undecodable bytes, or no ``$hostname`` header) is quarantined
          whole (``lineno=None``) and the remaining files still load.
        """
        policy = ErrorPolicy(policy)
        if policy is ErrorPolicy.STRICT:
            data = self.read_host(hostname, allow_truncated=allow_truncated,
                                  days=days)
            return HostReadResult(hostname, data, (), "ok")

        files = self.host_files(hostname, days=days)
        if not files:
            raise FileNotFoundError(f"no archived files for {hostname}")
        records: list[QuarantinedRecord] = []
        merged: HostData | None = None
        with span("ingest.parse", host=hostname):
            for path in files:
                faults: list[ParseFault] = []
                try:
                    text = self.read_file(path)
                    data = parse_host_text(text,
                                           allow_truncated=allow_truncated,
                                           faults=faults)
                except (ParseError, OSError, UnicodeDecodeError) as e:
                    records.append(QuarantinedRecord(
                        hostname=hostname, path=str(path), lineno=None,
                        kind="unreadable_file",
                        error=f"{type(e).__name__}: {e}",
                    ))
                    continue
                records.extend(
                    QuarantinedRecord(hostname=hostname, path=str(path),
                                      lineno=f.lineno,
                                      kind="malformed_record",
                                      error=f.error, text=f.text)
                    for f in faults
                )
                if not data.hostname:
                    continue  # fully empty file (node down all day)
                if data.hostname != hostname:
                    # The directory name is authoritative; a file
                    # claiming a different host has a corrupted header
                    # (and must not become the merge base for the real
                    # host's data).
                    records.append(QuarantinedRecord(
                        hostname=hostname, path=str(path), lineno=None,
                        kind="hostname_mismatch",
                        error=f"file claims hostname {data.hostname!r}",
                    ))
                    continue
                if merged is None:
                    merged = data
                else:
                    try:
                        merged.merge_from(data)
                    except ValueError as e:
                        # Hostname mismatch / schema drift: a corrupted
                        # header survived the line-level repair, so the
                        # whole file is quarantined instead.
                        records.append(QuarantinedRecord(
                            hostname=hostname, path=str(path), lineno=None,
                            kind="unmergeable_file", error=str(e),
                        ))
        if merged is None:
            merged = HostData(hostname=hostname)

        if policy is ErrorPolicy.QUARANTINE and records:
            return HostReadResult(hostname, None, tuple(records), "dropped")
        status = "degraded" if records else "ok"
        return HostReadResult(hostname, merged, tuple(records), status)

    def iter_hosts(self, allow_truncated: bool = False,
                   policy: str = ErrorPolicy.STRICT):
        """Yield each host's merged :class:`HostData`, lazily, in sorted
        hostname order.

        This is the streaming counterpart of calling :meth:`read_host`
        for every hostname: only one host's parsed data is alive at a
        time, so ingest memory stays bounded by the largest host rather
        than the whole archive.  Under a non-strict *policy* the yield
        is a :class:`HostReadResult` per host (dropped hosts included,
        with ``data=None``); under ``strict`` it stays plain
        :class:`HostData` for backward compatibility.
        """
        policy = ErrorPolicy(policy)
        for hostname in self.hostnames():
            if policy is ErrorPolicy.STRICT:
                yield self.read_host(hostname,
                                     allow_truncated=allow_truncated)
            else:
                yield self.read_host_checked(
                    hostname, allow_truncated=allow_truncated, policy=policy)
