"""Batch scheduler substrate.

A discrete-event scheduler (FCFS or EASY backfill) drives jobs through a
:class:`repro.cluster.Cluster`, producing the two artifacts the paper's
pipeline ingests: completed job records (→ SGE-style accounting log) and the
node-occupancy intervals that the TACC_Stats daemons sample.
"""

from repro.scheduler.accounting import AccountingWriter, parse_accounting
from repro.scheduler.engine import SchedulerEngine, SimulationResult
from repro.scheduler.events import SchedulerEventLog, parse_event_log
from repro.scheduler.job import ExitStatus, JobRecord, JobRequest
from repro.scheduler.policies import EasyBackfillPolicy, FCFSPolicy, SchedulingPolicy
from repro.scheduler.queue import WaitQueue

__all__ = [
    "ExitStatus",
    "JobRequest",
    "JobRecord",
    "WaitQueue",
    "SchedulingPolicy",
    "FCFSPolicy",
    "EasyBackfillPolicy",
    "SchedulerEngine",
    "SimulationResult",
    "AccountingWriter",
    "parse_accounting",
    "SchedulerEventLog",
    "parse_event_log",
]
