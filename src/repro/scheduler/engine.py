"""Discrete-event scheduler engine.

Consumes a submit-time-ordered stream of :class:`JobRequest` and an outage
schedule, drives them through a :class:`repro.cluster.Cluster` under a
:class:`SchedulingPolicy`, and emits :class:`JobRecord` objects plus an
active-node timeline (the raw material of the paper's Figure 8).

Event ordering at equal timestamps is fixed (outage-end < job-finish <
arrival < outage-start) so runs are bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.outages import Outage
from repro.scheduler.job import ExitStatus, JobRecord, JobRequest
from repro.scheduler.policies import RunningJob, SchedulingPolicy
from repro.scheduler.queue import WaitQueue

__all__ = ["SchedulerEngine", "SimulationResult"]

# Same-timestamp event priorities.
_P_OUTAGE_END = 0
_P_FINISH = 1
_P_ARRIVAL = 2
_P_OUTAGE_START = 3


@dataclass
class _Running:
    request: JobRequest
    start: float
    nodes: tuple[int, ...]
    finish_event_id: int


@dataclass
class SimulationResult:
    """Output of one scheduler run.

    Attributes
    ----------
    records:
        Completed jobs in end-time order.
    active_node_timeline:
        ``(time, active_count)`` step function samples — one entry per
        change (outage begin/end), anchored at t=0 and at the horizon.
    dropped:
        Requests never started (still queued at horizon).
    max_queue_depth:
        Peak number of simultaneously pending jobs (diagnostic).
    """

    records: list[JobRecord]
    active_node_timeline: list[tuple[float, int]]
    dropped: list[JobRequest]
    max_queue_depth: int = 0

    @property
    def total_node_hours(self) -> float:
        return sum(r.node_hours for r in self.records)

    def utilization(self, num_nodes: int, horizon: float) -> float:
        """Delivered node-hours over up-node-hours (uses the timeline)."""
        up_node_seconds = 0.0
        tl = self.active_node_timeline
        for (t0, n), (t1, _) in zip(tl, tl[1:]):
            up_node_seconds += n * (t1 - t0)
        if up_node_seconds <= 0:
            return 0.0
        return self.total_node_hours * 3600.0 / up_node_seconds


class SchedulerEngine:
    """Run one workload through one cluster under one policy."""

    def __init__(self, cluster: Cluster, policy: SchedulingPolicy):
        self.cluster = cluster
        self.policy = policy

    def run(
        self,
        requests: list[JobRequest],
        outages: list[Outage] | None = None,
        horizon: float | None = None,
    ) -> SimulationResult:
        """Simulate until all jobs finish or *horizon* (whichever first).

        Jobs still running at the horizon are terminated as CANCELLED (a
        drain, exactly what happens at a real decommission — Ranger's study
        period ends at its February 2013 shutdown); jobs still queued are
        returned in ``dropped``.
        """
        outages = outages or []
        if horizon is None:
            horizon = float("inf")

        heap: list[tuple[float, int, int, object]] = []
        counter = itertools.count()

        def push(t: float, prio: int, payload: object) -> int:
            eid = next(counter)
            heapq.heappush(heap, (t, prio, eid, payload))
            return eid

        for req in requests:
            if req.submit_time <= horizon:
                push(req.submit_time, _P_ARRIVAL, ("arrival", req))
        for o in outages:
            if o.start < horizon:
                push(o.start, _P_OUTAGE_START, ("outage_start", o))
                push(min(o.end, horizon), _P_OUTAGE_END, ("outage_end", o))

        queue = WaitQueue()
        running: dict[str, _Running] = {}
        # The policy's view of running jobs changes only on start/finish;
        # rebuilding it per event is O(running) on every arrival, which
        # profiling shows dominating large runs.
        run_view_cache: list[RunningJob] | None = None
        cancelled_finish_events: set[int] = set()
        records: list[JobRecord] = []
        timeline: list[tuple[float, int]] = [(0.0, self.cluster.active_count)]
        max_queue_depth = 0
        now = 0.0

        def record_timeline(t: float) -> None:
            n = self.cluster.active_count
            if timeline[-1][1] != n:
                timeline.append((t, n))

        def finish_job(jobid: str, t: float, status: ExitStatus) -> None:
            nonlocal run_view_cache
            run_view_cache = None
            rj = running.pop(jobid)
            cancelled_finish_events.add(rj.finish_event_id)
            self.cluster.release(jobid)
            records.append(
                JobRecord(
                    request=rj.request,
                    start_time=rj.start,
                    end_time=t,
                    node_indices=rj.nodes,
                    exit_status=status,
                )
            )

        def try_schedule(t: float) -> None:
            nonlocal run_view_cache
            if run_view_cache is None:
                run_view_cache = [
                    RunningJob(
                        jobid=j,
                        estimated_end=rj.start + rj.request.walltime_req,
                        nodes=rj.request.nodes,
                        app=rj.request.app,
                    )
                    for j, rj in running.items()
                ]
            run_view = run_view_cache
            picked = self.policy.select(queue, self.cluster.free_count, run_view, t)
            need = sum(p.nodes for p in picked)
            if need > self.cluster.free_count:
                raise RuntimeError(
                    f"policy {self.policy.name} oversubscribed: picked {need} "
                    f"nodes with {self.cluster.free_count} free"
                )
            if picked:
                run_view_cache = None
            for req in picked:
                nodes = tuple(self.cluster.allocate(req.jobid, req.nodes))
                end = t + req.effective_runtime
                eid = push(end, _P_FINISH, ("finish", req.jobid))
                running[req.jobid] = _Running(req, t, nodes, eid)
                queue.remove(req.jobid)

        while heap:
            t, prio, eid, payload = heapq.heappop(heap)
            if t > horizon:
                break
            now = t
            kind = payload[0]

            if kind == "finish":
                jobid = payload[1]
                if eid in cancelled_finish_events or jobid not in running:
                    continue
                finish_job(jobid, t, running[jobid].request.natural_exit())
                try_schedule(t)

            elif kind == "arrival":
                queue.push(payload[1])
                max_queue_depth = max(max_queue_depth, len(queue))
                try_schedule(t)

            elif kind == "outage_start":
                outage: Outage = payload[1]
                victims = self.cluster.begin_outage(
                    list(outage.nodes) if outage.nodes is not None else None
                )
                for jobid in sorted(victims):
                    finish_job(jobid, t, ExitStatus.NODE_FAIL)
                record_timeline(t)

            elif kind == "outage_end":
                outage = payload[1]
                self.cluster.end_outage(
                    list(outage.nodes) if outage.nodes is not None else None, t
                )
                record_timeline(t)
                try_schedule(t)

            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown event {kind!r}")

        # Horizon drain: terminate running jobs, collect never-started ones.
        end_t = min(now, horizon) if horizon != float("inf") else now
        if horizon != float("inf"):
            end_t = horizon
        for jobid in sorted(running):
            finish_job(jobid, end_t, ExitStatus.CANCELLED)
        dropped = queue.as_list()
        record_timeline(end_t)
        if timeline[-1][0] < end_t:
            timeline.append((end_t, self.cluster.active_count))

        records.sort(key=lambda r: (r.end_time, r.jobid))
        self.cluster.check_invariants()
        return SimulationResult(
            records=records,
            active_node_timeline=timeline,
            dropped=dropped,
            max_queue_depth=max_queue_depth,
        )
