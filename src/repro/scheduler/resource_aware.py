"""Complement-aware backfill — the paper's §4.3.4/§5 proposal, built.

    "Ultimately, modeling usage persistence could be a viable strategy to
    manage resource usage across an HPC cluster.  If the usage profile of
    various applications or users is established, the present usage could
    be assessed and jobs could be selected from the queue to complement
    the present resource usage e.g. add high I/O jobs when I/O is
    relatively free."

This policy is EASY backfill with one change: among the candidates that
are *already* legal to backfill (fit now, cannot delay the head), it
starts the ones that best complement the running mix instead of taking
them in queue order.  The running mix is assessed from established
application profiles (what SUPReMM's warehouse provides; here, the
catalog's expected per-node rates), exactly the data flow the paper
envisions.  Head-job fairness is untouched — only the backfill *order*
changes, which EASY already leaves unspecified.
"""

from __future__ import annotations

import numpy as np

from repro.scheduler.job import JobRequest
from repro.scheduler.policies import EasyBackfillPolicy, RunningJob
from repro.scheduler.queue import WaitQueue
from repro.workload.applications import APP_CATALOG, AppSignature

__all__ = ["ResourceAwareBackfillPolicy", "app_load_vector"]

#: The balanced dimensions: per-node I/O (MB/s) and network (MB/s), each
#: normalized by a "heavy" reference rate so the two are commensurate.
_IO_REF_MB = 10.0
_NET_REF_MB = 40.0


def app_load_vector(app_name: str) -> np.ndarray:
    """(io, net) expected per-node load of an application, normalized.

    Unknown applications are assumed average-ish; a production system
    would use the warehouse's measured profile instead of the catalog.
    """
    app: AppSignature | None = APP_CATALOG.get(app_name)
    if app is None:
        return np.array([0.15, 0.3])
    io = (app.io_scratch_write_mb + app.io_scratch_read_mb
          + app.io_work_write_mb + app.io_work_read_mb)
    return np.array([io / _IO_REF_MB, app.net_mpi_mb / _NET_REF_MB])


class ResourceAwareBackfillPolicy(EasyBackfillPolicy):
    """EASY backfill that orders backfill candidates by complementarity.

    Scoring: with the running mix's per-node load vector ``L`` (io, net)
    and a candidate's vector ``c``, the score is ``dot(L̂, ĉ)`` — the
    cosine alignment of the candidate with the *current* pressure.  Low
    scores (orthogonal: the candidate stresses what is currently idle)
    start first.  When the machine is empty the ordering reduces to
    queue order (stable sort).
    """

    name = "resource_aware_backfill"

    def select(self, queue: WaitQueue, free_nodes: int,
               running: list[RunningJob], now: float) -> list[JobRequest]:
        # Phase 1 (FCFS prefix) must stay queue-ordered for fairness; we
        # reuse the parent implementation on a reordered *tail* only.
        pending = queue.as_list()
        i = 0
        avail = free_nodes
        while i < len(pending) and pending[i].nodes <= avail:
            avail -= pending[i].nodes
            i += 1
        if i >= len(pending) - 1:
            # No backfill tail to reorder.
            return super().select(queue, free_nodes, running, now)

        load = self._current_load(running)
        tail = pending[i + 1:]
        scored = sorted(
            range(len(tail)),
            key=lambda k: (self._alignment(load, tail[k]), k),
        )
        reordered = pending[: i + 1] + [tail[k] for k in scored]
        view = _ListQueueView(reordered)
        return super().select(view, free_nodes, running, now)

    @staticmethod
    def _current_load(running: list[RunningJob]) -> np.ndarray:
        total = np.zeros(2)
        for rj in running:
            total += app_load_vector(rj.app) * rj.nodes
        return total

    @staticmethod
    def _alignment(load: np.ndarray, candidate: JobRequest) -> float:
        c = app_load_vector(candidate.app) * candidate.nodes
        ln = float(np.linalg.norm(load))
        cn = float(np.linalg.norm(c))
        if ln == 0 or cn == 0:
            return 0.0
        return float(np.dot(load, c) / (ln * cn))


class _ListQueueView:
    """Duck-typed WaitQueue view over a reordered pending list.

    The parent policy only iterates and snapshots the queue; removal is
    handled by the engine on the real queue.
    """

    def __init__(self, items: list[JobRequest]):
        self._items = items

    def __iter__(self):
        return iter(self._items)

    def as_list(self) -> list[JobRequest]:
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)
