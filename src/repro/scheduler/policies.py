"""Scheduling policies: plain FCFS and EASY backfill.

The policy answers one question — *which pending jobs start now?* — given
the queue, the free-node count, and walltime-based estimates of when running
jobs will release nodes.  EASY backfill (the production policy on both of
the paper's systems) lets later jobs jump the head as long as they cannot
delay the head's earliest possible start; the FCFS variant exists as the
ablation baseline (``bench_ablation_scheduler``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.scheduler.job import JobRequest
from repro.scheduler.queue import WaitQueue

__all__ = ["RunningJob", "SchedulingPolicy", "FCFSPolicy", "EasyBackfillPolicy"]


@dataclass(frozen=True)
class RunningJob:
    """What the policy may know about a running job: its walltime-based
    completion estimate, how many nodes it will release, and (for
    resource-aware policies) which application it runs — all information
    a production scheduler genuinely has at dispatch time."""

    jobid: str
    estimated_end: float
    nodes: int
    app: str = ""


class SchedulingPolicy(ABC):
    """Interface: pick pending jobs to start immediately."""

    name: str = "abstract"

    @abstractmethod
    def select(
        self,
        queue: WaitQueue,
        free_nodes: int,
        running: list[RunningJob],
        now: float,
    ) -> list[JobRequest]:
        """Return requests to start now, in start order.

        The returned jobs' node counts must sum to at most *free_nodes*;
        the engine validates this and would raise on a buggy policy.
        """


class FCFSPolicy(SchedulingPolicy):
    """Strict first-come-first-served: start head jobs while they fit; the
    first job that does not fit blocks everything behind it."""

    name = "fcfs"

    def select(self, queue, free_nodes, running, now):
        picked: list[JobRequest] = []
        for req in queue:
            if req.nodes > free_nodes:
                break
            picked.append(req)
            free_nodes -= req.nodes
        return picked


class EasyBackfillPolicy(SchedulingPolicy):
    """EASY (aggressive) backfill.

    1. Start head jobs while they fit.
    2. When the head does not fit, compute its *shadow time* — the earliest
       instant enough nodes will be free assuming running jobs exit at their
       walltime estimates — and the *extra* nodes left over at that instant.
    3. A later job may backfill iff it fits now AND (it will finish before
       the shadow time, by its own walltime estimate, OR it needs no more
       than the extra nodes).

    Parameters
    ----------
    max_backfill_depth:
        How far past the head to scan (production schedulers bound this for
        cost; also keeps the simulation O(queue) per event).
    """

    name = "easy_backfill"

    def __init__(self, max_backfill_depth: int = 100):
        if max_backfill_depth < 0:
            raise ValueError("max_backfill_depth must be >= 0")
        self.max_backfill_depth = max_backfill_depth

    def select(self, queue, free_nodes, running, now):
        picked: list[JobRequest] = []
        pending = queue.as_list()
        i = 0

        # Phase 1: FCFS prefix.
        while i < len(pending) and pending[i].nodes <= free_nodes:
            picked.append(pending[i])
            free_nodes -= pending[i].nodes
            i += 1
        if i >= len(pending):
            return picked

        head = pending[i]
        shadow_time, extra_nodes = self._reservation(
            head, free_nodes, running, now
        )

        # Phase 2: backfill behind the head.
        scanned = 0
        for req in pending[i + 1:]:
            if scanned >= self.max_backfill_depth:
                break
            scanned += 1
            if req.nodes > free_nodes:
                continue
            finishes_before_shadow = now + req.walltime_req <= shadow_time
            fits_in_extra = req.nodes <= extra_nodes
            if finishes_before_shadow or fits_in_extra:
                picked.append(req)
                free_nodes -= req.nodes
                if not finishes_before_shadow:
                    extra_nodes -= req.nodes

        return picked

    @staticmethod
    def _reservation(
        head: JobRequest,
        free_nodes: int,
        running: list[RunningJob],
        now: float,
    ) -> tuple[float, int]:
        """(shadow_time, extra_nodes) for the blocked head job.

        Walk running jobs in estimated-end order, accumulating released
        nodes until the head fits.  If it can never fit (head larger than
        the machine minus down nodes), reserve at +infinity so nothing is
        throttled by the shadow rule — backfill then degrades gracefully to
        "fits in free nodes".
        """
        avail = free_nodes
        for rj in sorted(running, key=lambda r: r.estimated_end):
            if avail >= head.nodes:
                break
            avail += rj.nodes
            if avail >= head.nodes:
                return max(rj.estimated_end, now), avail - head.nodes
        if avail >= head.nodes:
            # Head fits in currently free nodes — caller logic prevents
            # this, but a well-defined answer beats an assertion here.
            return now, avail - head.nodes
        return float("inf"), 0
