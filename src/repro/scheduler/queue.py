"""Wait queue with stable FIFO-by-submit ordering.

Both policies consume the queue in priority order; EASY backfill needs to
scan past the head, so the queue exposes an ordered view plus O(1)-amortized
removal by job id.
"""

from __future__ import annotations

from repro.scheduler.job import JobRequest

__all__ = ["WaitQueue"]


class WaitQueue:
    """FIFO queue of pending :class:`JobRequest` objects.

    Ordering is (submit_time, jobid-sequence) which is how an SGE/SLURM
    priority queue behaves with equal priorities.  Removal by id is lazy:
    removed entries are tombstoned and skipped on iteration, keeping both
    push and remove cheap at simulation scale.
    """

    def __init__(self):
        self._items: list[JobRequest] = []
        self._dead: set[str] = set()
        self._live_count = 0

    def push(self, request: JobRequest) -> None:
        """Enqueue a request (must arrive in submit-time order)."""
        if self._items and request.submit_time < self._items[-1].submit_time:
            raise ValueError(
                f"out-of-order submit: {request.jobid} at {request.submit_time} "
                f"after {self._items[-1].jobid} at {self._items[-1].submit_time}"
            )
        self._items.append(request)
        self._live_count += 1

    def remove(self, jobid: str) -> None:
        """Remove a pending request by id (e.g. when it starts)."""
        if jobid in self._dead:
            raise KeyError(f"job {jobid} already removed")
        self._dead.add(jobid)
        self._live_count -= 1
        # Compact when tombstones dominate to bound memory.
        if len(self._dead) > 64 and len(self._dead) > self._live_count:
            self._items = [r for r in self._items if r.jobid not in self._dead]
            self._dead.clear()

    def __len__(self) -> int:
        return self._live_count

    def __bool__(self) -> bool:
        return self._live_count > 0

    def __iter__(self):
        """Iterate live requests in priority order."""
        for r in self._items:
            if r.jobid not in self._dead:
                yield r

    def head(self) -> JobRequest | None:
        """Highest-priority pending request, or None."""
        for r in self:
            return r
        return None

    def as_list(self) -> list[JobRequest]:
        return list(self)
