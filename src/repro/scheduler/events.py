"""Scheduler event log.

A simple, parseable record of queue activity (submit / start / finish /
outage), one event per line.  The rationalized-syslog tooling consumes this
to tag messages with job ids, and the ingest pipeline uses it to
cross-check accounting (a real deployment reconciles the two sources; so
do our integration tests).

Line format::

    <epoch> <event> <jobid> <key=value> ...

e.g. ``1372088405 job_start 2683088 user=user0042 nodes=16``
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterator, TextIO

from repro.scheduler.job import JobRecord, JobRequest

__all__ = ["SchedulerEvent", "SchedulerEventLog", "parse_event_log"]

_KNOWN_EVENTS = frozenset(
    {"job_submit", "job_start", "job_finish", "outage_begin", "outage_end"}
)


@dataclass(frozen=True)
class SchedulerEvent:
    """One parsed scheduler event."""

    time: int
    event: str
    jobid: str
    attrs: dict[str, str] = field(default_factory=dict)


class SchedulerEventLog:
    """Writes scheduler events to a text sink."""

    def __init__(self, sink: TextIO):
        self._sink = sink
        self.events_written = 0

    def _emit(self, time: float, event: str, jobid: str, **attrs: object) -> None:
        parts = [str(int(time)), event, jobid]
        for k, v in attrs.items():
            sv = str(v)
            if " " in sv or "=" in sv:
                raise ValueError(f"event attribute not token-safe: {k}={sv!r}")
            parts.append(f"{k}={sv}")
        self._sink.write(" ".join(parts) + "\n")
        self.events_written += 1

    def job_submit(self, req: JobRequest) -> None:
        self._emit(req.submit_time, "job_submit", req.jobid,
                   user=req.user, nodes=req.nodes, queue=req.queue)

    def job_start(self, record: JobRecord) -> None:
        self._emit(record.start_time, "job_start", record.jobid,
                   user=record.user, nodes=record.request.nodes)

    def job_finish(self, record: JobRecord) -> None:
        self._emit(record.end_time, "job_finish", record.jobid,
                   status=record.exit_status.value)

    def outage(self, start: float, end: float, kind: str, nodes: int) -> None:
        self._emit(start, "outage_begin", "-", kind=kind, nodes=nodes)
        self._emit(end, "outage_end", "-", kind=kind)

    def write_run(self, records: list[JobRecord]) -> None:
        """Emit submit/start/finish for a finished simulation, time-ordered."""
        events: list[tuple[float, int, JobRecord]] = []
        for r in records:
            events.append((r.request.submit_time, 0, r))
            events.append((r.start_time, 1, r))
            events.append((r.end_time, 2, r))
        events.sort(key=lambda e: (e[0], e[1], e[2].jobid))
        for t, kind, r in events:
            if kind == 0:
                self.job_submit(r.request)
            elif kind == 1:
                self.job_start(r)
            else:
                self.job_finish(r)


def parse_event_log(source: TextIO | str) -> Iterator[SchedulerEvent]:
    """Parse an event log; raises ValueError on malformed lines."""
    handle = io.StringIO(source) if isinstance(source, str) else source
    for lineno, raw in enumerate(handle, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3:
            raise ValueError(f"event log line {lineno}: too few tokens: {line!r}")
        try:
            t = int(parts[0])
        except ValueError as e:
            raise ValueError(f"event log line {lineno}: bad timestamp") from e
        event = parts[1]
        if event not in _KNOWN_EVENTS:
            raise ValueError(f"event log line {lineno}: unknown event {event!r}")
        attrs: dict[str, str] = {}
        for token in parts[3:]:
            if "=" not in token:
                raise ValueError(
                    f"event log line {lineno}: bad attribute {token!r}"
                )
            k, v = token.split("=", 1)
            attrs[k] = v
        yield SchedulerEvent(time=t, event=event, jobid=parts[2], attrs=attrs)
