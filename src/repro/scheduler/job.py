"""Job request and completed-job record types.

A :class:`JobRequest` is what the workload generator emits; a
:class:`JobRecord` is what the scheduler produces when the job leaves the
system and is the unit of everything downstream (accounting, stats matching,
warehouse facts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ExitStatus", "JobRequest", "JobRecord"]


class ExitStatus(enum.Enum):
    """How a job left the system (accounting `failed`/`exit_status` fields)."""

    COMPLETED = "completed"
    FAILED = "failed"          # application error / nonzero exit
    TIMEOUT = "timeout"        # hit requested walltime, killed by scheduler
    CANCELLED = "cancelled"    # user/operator qdel (incl. end-of-horizon drain)
    NODE_FAIL = "node_fail"    # lost a node to an outage

    @property
    def accounting_code(self) -> tuple[int, int]:
        """(failed, exit_status) pair as GridEngine accounting encodes them."""
        return {
            ExitStatus.COMPLETED: (0, 0),
            ExitStatus.FAILED: (0, 1),
            ExitStatus.TIMEOUT: (100, 137),
            ExitStatus.CANCELLED: (100, 143),
            ExitStatus.NODE_FAIL: (26, 139),
        }[self]

    @classmethod
    def from_accounting_code(cls, failed: int, exit_status: int) -> "ExitStatus":
        for status in cls:
            if status.accounting_code == (failed, exit_status):
                return status
        # Unknown combination: anything with failed != 0 is a failure class.
        return cls.FAILED if failed or exit_status else cls.COMPLETED


@dataclass(frozen=True)
class JobRequest:
    """A job as submitted.

    Attributes
    ----------
    jobid:
        Unique id (stringified sequence number, SGE style).
    user, account, science_field, app:
        Identity used by the analytics group-bys.  ``app`` is the
        application archetype name (what Lariat would identify from the
        executable/libraries).
    queue:
        Submission queue (``"normal"``, ``"development"``, ...).
    submit_time:
        Facility epoch seconds.
    nodes:
        Requested node count (node-exclusive scheduling).
    walltime_req:
        Requested wall limit in seconds.
    runtime:
        Intrinsic runtime in seconds if neither the limit nor a failure
        intervenes (not visible to the scheduler — only its outcome is).
    fail_after:
        If not None, the application aborts this many seconds in.
    behavior_seed:
        Seed for this job's metric behaviour (collectors and the fast
        synthesis path must agree, so the seed travels with the job).
    """

    jobid: str
    user: str
    account: str
    science_field: str
    app: str
    queue: str
    submit_time: float
    nodes: int
    walltime_req: float
    runtime: float
    fail_after: float | None = None
    behavior_seed: int = 0

    def __post_init__(self):
        if self.nodes <= 0:
            raise ValueError(f"job {self.jobid}: nodes must be positive")
        if self.walltime_req <= 0 or self.runtime <= 0:
            raise ValueError(f"job {self.jobid}: times must be positive")
        if self.fail_after is not None and self.fail_after <= 0:
            raise ValueError(f"job {self.jobid}: fail_after must be positive")

    @property
    def effective_runtime(self) -> float:
        """Seconds the job will actually occupy nodes (barring outages)."""
        t = min(self.runtime, self.walltime_req)
        if self.fail_after is not None:
            t = min(t, self.fail_after)
        return t

    def natural_exit(self) -> ExitStatus:
        """Exit status if no outage interrupts the job."""
        if self.fail_after is not None and self.fail_after < min(
            self.runtime, self.walltime_req
        ):
            return ExitStatus.FAILED
        if self.runtime > self.walltime_req:
            return ExitStatus.TIMEOUT
        return ExitStatus.COMPLETED


@dataclass(frozen=True)
class JobRecord:
    """A job as it left the system."""

    request: JobRequest
    start_time: float
    end_time: float
    node_indices: tuple[int, ...]
    exit_status: ExitStatus

    def __post_init__(self):
        if self.end_time < self.start_time:
            raise ValueError(f"job {self.jobid}: ends before it starts")
        if len(self.node_indices) != self.request.nodes:
            raise ValueError(
                f"job {self.jobid}: {len(self.node_indices)} nodes granted, "
                f"{self.request.nodes} requested"
            )

    # Delegate identity to the request for ergonomic access.
    @property
    def jobid(self) -> str:
        return self.request.jobid

    @property
    def user(self) -> str:
        return self.request.user

    @property
    def app(self) -> str:
        return self.request.app

    @property
    def science_field(self) -> str:
        return self.request.science_field

    @property
    def wait_time(self) -> float:
        """Queue wait in seconds."""
        return self.start_time - self.request.submit_time

    @property
    def wall_seconds(self) -> float:
        return self.end_time - self.start_time

    @property
    def node_hours(self) -> float:
        """Node-hours consumed — the paper's universal weight."""
        return self.request.nodes * self.wall_seconds / 3600.0
