"""GridEngine-style accounting log writer/parser.

Ranger and Lonestar4 ran Sun Grid Engine; the paper ingests "job accounting
information" into MySQL alongside the raw TACC_Stats files.  Real SGE
accounting lines are 45 colon-separated fields; we emit the subset the
pipeline needs, in the same colon-separated, one-line-per-job shape, plus
two trailing site fields TACC actually added (science field, app tag from
Lariat).  The parser is strict: short lines or non-numeric fields raise.

Field layout (0-based):

====  ==================  =========================================
 idx  name                example
====  ==================  =========================================
  0   qname               normal
  1   hostname            c101-001.ranger (master host)
  2   group               G-25072
  3   owner               user0042
  4   job_name             namd_run
  5   job_number          2683088
  6   account             TG-MCB100042
  7   priority            0
  8   submission_time     1372088105 (int seconds)
  9   start_time          1372088405
 10   end_time            1372139205
 11   failed              0
 12   exit_status         0
 13   ru_wallclock        50800
 14   slots               256   (cores granted)
 15   granted_nodes       16
 16   science_field       Molecular Biosciences
 17   app_tag             namd
====  ==================  =========================================
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.scheduler.job import ExitStatus, JobRecord

__all__ = ["AccountingEntry", "AccountingWriter", "format_accounting_line",
           "parse_accounting_line", "parse_accounting"]

_NUM_FIELDS = 18


@dataclass(frozen=True)
class AccountingEntry:
    """One parsed accounting line (job-level facts only)."""

    qname: str
    hostname: str
    group: str
    owner: str
    job_name: str
    job_number: str
    account: str
    priority: int
    submission_time: int
    start_time: int
    end_time: int
    exit: ExitStatus
    slots: int
    granted_nodes: int
    science_field: str
    app_tag: str

    @property
    def wall_seconds(self) -> int:
        return self.end_time - self.start_time

    @property
    def wait_seconds(self) -> int:
        return self.start_time - self.submission_time

    @property
    def node_hours(self) -> float:
        return self.granted_nodes * self.wall_seconds / 3600.0


def format_accounting_line(record: JobRecord, cores_per_node: int,
                           system_name: str) -> str:
    """Render a completed job as one accounting line."""
    req = record.request
    failed, exit_status = record.exit_status.accounting_code
    master = f"c{record.node_indices[0] // 100:03d}-{record.node_indices[0] % 100:03d}.{system_name}"
    fields = [
        req.queue,
        master,
        f"G-{abs(hash(req.account)) % 99999:05d}",
        req.user,
        f"{req.app}_run",
        req.jobid,
        req.account,
        "0",
        str(int(req.submit_time)),
        str(int(record.start_time)),
        str(int(record.end_time)),
        str(failed),
        str(exit_status),
        str(int(record.wall_seconds)),
        str(req.nodes * cores_per_node),
        str(req.nodes),
        req.science_field,
        req.app,
    ]
    for f in fields:
        if ":" in f:
            raise ValueError(f"accounting field contains separator: {f!r}")
    return ":".join(fields)


def parse_accounting_line(line: str) -> AccountingEntry:
    """Parse one accounting line; raises ValueError on malformed input."""
    line = line.rstrip("\n")
    parts = line.split(":")
    if len(parts) != _NUM_FIELDS:
        raise ValueError(
            f"accounting line has {len(parts)} fields, expected {_NUM_FIELDS}: "
            f"{line[:80]!r}"
        )
    try:
        priority = int(parts[7])
        submission = int(parts[8])
        start = int(parts[9])
        end = int(parts[10])
        failed = int(parts[11])
        exit_status = int(parts[12])
        slots = int(parts[14])
        granted = int(parts[15])
    except ValueError as e:
        raise ValueError(f"non-numeric accounting field in {line[:80]!r}") from e
    if end < start or start < submission:
        raise ValueError(f"inconsistent times in accounting line {parts[5]}")
    return AccountingEntry(
        qname=parts[0],
        hostname=parts[1],
        group=parts[2],
        owner=parts[3],
        job_name=parts[4],
        job_number=parts[5],
        account=parts[6],
        priority=priority,
        submission_time=submission,
        start_time=start,
        end_time=end,
        exit=ExitStatus.from_accounting_code(failed, exit_status),
        slots=slots,
        granted_nodes=granted,
        science_field=parts[16],
        app_tag=parts[17],
    )


class AccountingWriter:
    """Streams accounting lines for completed jobs to a text sink."""

    def __init__(self, sink: TextIO, cores_per_node: int, system_name: str):
        self._sink = sink
        self._cores_per_node = cores_per_node
        self._system = system_name
        self.lines_written = 0

    def write(self, record: JobRecord) -> None:
        self._sink.write(
            format_accounting_line(record, self._cores_per_node, self._system)
        )
        self._sink.write("\n")
        self.lines_written += 1

    def write_all(self, records: Iterable[JobRecord]) -> None:
        for r in records:
            self.write(r)


def parse_accounting(source: TextIO | str) -> Iterator[AccountingEntry]:
    """Parse a whole accounting file (path contents or open handle).

    Blank lines and ``#`` comments are skipped, as in real spool files.
    """
    handle = io.StringIO(source) if isinstance(source, str) else source
    for raw in handle:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_accounting_line(line)
