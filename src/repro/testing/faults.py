"""Seeded fault injection for TACC_Stats archives and scan workers.

Every injector is a pure function of ``(file contents, seed)``, so a
fault matrix run is exactly reproducible: the same seed corrupts the
same byte of the same line every time.  The catalogue covers the
failure modes a facility actually produces:

====================  =====================================================
kind                  what happens to the file
====================  =====================================================
``truncated_tail``    the final line is cut mid-record (node crashed
                      mid-write); *benign* — ``allow_truncated`` drops
                      exactly that line
``bit_flip``          one digit inside a data row's value region is
                      XOR 0x40-flipped into a letter (bad DIMM, bit rot);
                      *fatal* — the row can never cast to uint64
``missing_schema``    one ``!`` schema line is deleted (lost first block
                      of a rotated file); *fatal* — that type's rows are
                      undeclared
``garbage_lines``     foreign text is interleaved into the stream (log
                      corruption, concurrent writer); *fatal*
``zero_byte``         the file is emptied (disk-full creat+crash);
                      *benign* — an empty file means "node down all day"
``duplicate_timestamp``  a timestamp line is emitted twice (daemon retry
                      after a partial flush); *benign* — an empty
                      same-time block is legal
====================  =====================================================

*Fatal* kinds make the host fail a ``strict`` parse and get the host
dropped under ``quarantine``; *benign* kinds parse clean everywhere.

The module also ships picklable worker shims (:func:`crashy_scan`,
:func:`sleepy_scan`) that wrap the real scan entry point to simulate
transient worker death and wedged workers for the retry engine — bind
their leading configuration arguments with :func:`functools.partial`
and pass the result as ``scan_fn`` to
:func:`repro.ingest.parallel.scan_archive`.
"""

from __future__ import annotations

import gzip
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path

from repro.ingest.parallel import _scan_one

__all__ = [
    "BENIGN_KINDS",
    "FATAL_KINDS",
    "FAULT_KINDS",
    "InjectedFault",
    "corrupt_archive",
    "crashy_scan",
    "inject_fault",
    "sleepy_scan",
]

#: Kinds that make the file unparseable under ``strict``.
FATAL_KINDS = ("bit_flip", "missing_schema", "garbage_lines")
#: Kinds every policy tolerates without quarantining anything.
BENIGN_KINDS = ("truncated_tail", "zero_byte", "duplicate_timestamp")
#: The full catalogue.
FAULT_KINDS = FATAL_KINDS + BENIGN_KINDS


@dataclass(frozen=True)
class InjectedFault:
    """Provenance of one injected corruption (for test assertions)."""

    path: str
    kind: str
    lineno: int | None
    detail: str


def _read(path: Path) -> str:
    """Decompressed text of an archive file (gz-aware)."""
    if path.suffix == ".gz":
        return gzip.decompress(path.read_bytes()).decode("utf-8")
    return path.read_text()


def _write(path: Path, text: str) -> None:
    """Write *text* back in the file's own encoding (gz-aware)."""
    if path.suffix == ".gz":
        path.write_bytes(gzip.compress(text.encode("utf-8")))
    else:
        path.write_text(text)


def _data_row_indices(lines: list[str]) -> list[int]:
    """Indices of data-row lines (lowercase-leading, >= 3 tokens)."""
    return [
        i for i, line in enumerate(lines)
        if line[:1].islower() and line.count(" ") >= 2
    ]


def _truncated_tail(lines: list[str], rng: random.Random
                    ) -> tuple[list[str], int, str]:
    """Cut the final line right after one of its spaces.

    Cutting *after* a space leaves a trailing empty token, which can
    never cast to uint64 — so the truncation is always detectable and
    ``allow_truncated`` drops exactly this line, never a reinterpreted
    prefix of it.
    """
    last = len(lines) - 1
    spaces = [i for i, ch in enumerate(lines[last]) if ch == " "]
    cut = rng.choice(spaces) + 1
    lines[last] = lines[last][:cut]
    return lines, last + 1, f"cut at column {cut}, no trailing newline"


def _bit_flip(lines: list[str], rng: random.Random
              ) -> tuple[list[str], int, str]:
    """XOR 0x40 one digit in a data row's value region.

    A flipped digit becomes a letter (``0x30-0x39 -> 0x70-0x79``), so
    the row is guaranteed non-numeric — the corruption can never pass
    as a different valid value.
    """
    idx = rng.choice(_data_row_indices(lines))
    type_name, device, rest = lines[idx].split(" ", 2)
    digit_cols = [i for i, ch in enumerate(rest) if ch.isdigit()]
    col = rng.choice(digit_cols)
    flipped = chr(ord(rest[col]) ^ 0x40)
    rest = rest[:col] + flipped + rest[col + 1:]
    lines[idx] = f"{type_name} {device} {rest}"
    return lines, idx + 1, f"value digit -> {flipped!r}"


def _missing_schema(lines: list[str], rng: random.Random
                    ) -> tuple[list[str], int, str]:
    """Delete one ``!`` schema line."""
    schema_rows = [i for i, line in enumerate(lines)
                   if line.startswith("!")]
    idx = rng.choice(schema_rows)
    removed = lines.pop(idx)
    return lines, idx + 1, f"deleted {removed.split(' ', 1)[0]}"


def _garbage_lines(lines: list[str], rng: random.Random
                   ) -> tuple[list[str], int, str]:
    """Interleave three lines of foreign text into the stream."""
    first = min(len(lines), 1)
    pos = sorted(rng.randrange(first, len(lines)) for _ in range(3))
    for offset, idx in enumerate(pos):
        lines.insert(idx + offset,
                     f"GARBAGE interleaved line {rng.randrange(10**6)}")
    return lines, pos[0] + 1, f"3 garbage lines from line {pos[0] + 1}"


def _zero_byte(lines: list[str], rng: random.Random
               ) -> tuple[list[str], int | None, str]:
    """Empty the file completely."""
    del rng
    return [], None, "file emptied"


def _duplicate_timestamp(lines: list[str], rng: random.Random
                         ) -> tuple[list[str], int, str]:
    """Emit one timestamp line twice in a row."""
    ts_rows = [i for i, line in enumerate(lines) if line[:1].isdigit()]
    idx = rng.choice(ts_rows)
    lines.insert(idx + 1, lines[idx])
    return lines, idx + 2, f"duplicated {lines[idx].split(' ')[0]}"


_INJECTORS = {
    "truncated_tail": _truncated_tail,
    "bit_flip": _bit_flip,
    "missing_schema": _missing_schema,
    "garbage_lines": _garbage_lines,
    "zero_byte": _zero_byte,
    "duplicate_timestamp": _duplicate_timestamp,
}


def inject_fault(path: str | Path, kind: str, seed: int) -> InjectedFault:
    """Corrupt one archive file in place, deterministically.

    The same ``(file contents, kind, seed)`` always produces the same
    corruption.  Raises ``ValueError`` for unknown kinds or a file too
    small to host the requested corruption.
    """
    if kind not in _INJECTORS:
        raise ValueError(f"unknown fault kind {kind!r}; "
                         f"choose from {FAULT_KINDS}")
    path = Path(path)
    text = _read(path)
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines and kind != "zero_byte":
        raise ValueError(f"{path} is empty; cannot inject {kind!r}")
    rng = random.Random(seed)
    lines, lineno, detail = _INJECTORS[kind](lines, rng)
    out = "\n".join(lines)
    if out and kind != "truncated_tail":
        out += "\n"  # truncated_tail alone loses its terminator
    _write(path, out)
    return InjectedFault(path=str(path), kind=kind, lineno=lineno,
                         detail=detail)


def corrupt_archive(root: str | Path, hosts: dict[str, str],
                    seed: int) -> list[InjectedFault]:
    """Corrupt one file per host: ``{hostname: fault kind}``.

    Each host's *first* archived file is corrupted (deterministic
    choice), with a per-host sub-seed so adding or removing a victim
    never changes what happens to the others.  Returns the injected
    faults in sorted hostname order.
    """
    root = Path(root)
    injected = []
    for i, (hostname, kind) in enumerate(sorted(hosts.items())):
        files = sorted((root / hostname).iterdir())
        if not files:
            raise ValueError(f"no archived files for {hostname}")
        injected.append(inject_fault(files[0], kind, seed=seed * 1000 + i))
    return injected


def crashy_scan(state_dir: str, crash_hosts: tuple[str, ...],
                n_crashes: int, root: str, hostname: str,
                allow_truncated: bool, policy: str,
                days: tuple[str, ...] | None = None):
    """Scan worker that dies (``os._exit``) for chosen hosts.

    Bind the first three arguments with ``functools.partial`` and pass
    the result as ``scan_fn``.  Each host in *crash_hosts* kills its
    worker process outright on its first *n_crashes* attempts (tracked
    in a counter file under *state_dir*, which must be shared across
    worker processes); pass a negative *n_crashes* to crash forever.
    Everything else falls through to the real scan.
    """
    if hostname in crash_hosts:
        marker = Path(state_dir) / f"{hostname}.attempts"
        attempts = int(marker.read_text()) if marker.exists() else 0
        marker.write_text(str(attempts + 1))
        if n_crashes < 0 or attempts < n_crashes:
            os._exit(1)
    return _scan_one(root, hostname, allow_truncated, policy, days)


def sleepy_scan(sleep_hosts: tuple[str, ...], sleep_seconds: float,
                root: str, hostname: str, allow_truncated: bool,
                policy: str, days: tuple[str, ...] | None = None):
    """Scan worker that wedges (sleeps) for chosen hosts.

    Bind the first two arguments with ``functools.partial``; used to
    exercise the per-round ``timeout`` in the fan-out.
    """
    if hostname in sleep_hosts:
        time.sleep(sleep_seconds)
    return _scan_one(root, hostname, allow_truncated, policy, days)
