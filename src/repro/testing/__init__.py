"""Deterministic test instrumentation for the repro tool chain.

Currently home to :mod:`repro.testing.faults`, the seeded
fault-injection harness the fault-matrix suite uses to corrupt archives
and crash scan workers reproducibly.  Importable from production code
reviews but never imported *by* production code.
"""

from repro.testing.faults import (
    BENIGN_KINDS,
    FATAL_KINDS,
    FAULT_KINDS,
    InjectedFault,
    corrupt_archive,
    crashy_scan,
    inject_fault,
    sleepy_scan,
)

__all__ = [
    "BENIGN_KINDS",
    "FATAL_KINDS",
    "FAULT_KINDS",
    "InjectedFault",
    "corrupt_archive",
    "crashy_scan",
    "inject_fault",
    "sleepy_scan",
]
