"""Failure/event generator: emits raw syslog lines driven by job behaviour.

The point of the rationalized log in the paper's tool chain is correlating
faults with resource anomalies (ANCOR [26]).  For that linkage to be
reproducible, failures here are *caused by* behaviour, not sprinkled
uniformly: jobs near memory capacity draw OOM kills, heavy Lustre writers
draw client timeouts/evictions, high-idle (stuck) jobs draw soft lockups,
and every job gets prolog/epilog bookends.  A thin layer of random
hardware noise (MCE, IB link flaps) lands on arbitrary nodes.
"""

from __future__ import annotations

import numpy as np

from repro.scheduler.job import ExitStatus, JobRecord
from repro.syslogr.catalog import MESSAGE_CATALOG, MessageKind, RawMessage

__all__ = ["SyslogGenerator"]


class SyslogGenerator:
    """Generate the raw message stream for a finished simulation."""

    #: Memory fraction above which OOM risk turns on.
    OOM_THRESHOLD = 0.92
    #: Scratch write rate (MB/s/node) above which Lustre timeouts appear.
    LUSTRE_STRESS_MB = 12.0

    def __init__(self, rng: np.random.Generator, system_name: str):
        self._rng = rng
        self._system = system_name

    def _hostname(self, node_index: int) -> str:
        return f"c{node_index // 100:03d}-{node_index % 100:03d}.{self._system}"

    def generate_for_job(
        self,
        record: JobRecord,
        mem_frac_max: float,
        scratch_write_mb: float,
        cpu_idle_frac: float,
    ) -> list[RawMessage]:
        """Raw messages attributable to one job's run."""
        rng = self._rng
        out: list[RawMessage] = []
        req = record.request
        hosts = [self._hostname(i) for i in record.node_indices]
        head = hosts[0]

        out.append(RawMessage(
            record.start_time, head, "sge",
            MESSAGE_CATALOG[MessageKind.JOB_PROLOG].render(
                jobid=req.jobid, user=req.user),
        ))

        mid = 0.5 * (record.start_time + record.end_time)
        span = max(record.end_time - record.start_time, 1.0)

        if mem_frac_max > self.OOM_THRESHOLD and rng.random() < 0.6:
            t = record.start_time + span * rng.uniform(0.5, 0.98)
            out.append(RawMessage(
                t, hosts[int(rng.integers(len(hosts)))], "kernel",
                MESSAGE_CATALOG[MessageKind.OOM_KILL].render(
                    pid=int(rng.integers(2000, 30000)),
                    comm=f"{req.app}.x"[:15],
                    vm_kb=int(mem_frac_max * 32 * 1024 * 1024),
                    rss_kb=int(mem_frac_max * 30 * 1024 * 1024),
                ),
            ))

        if scratch_write_mb > self.LUSTRE_STRESS_MB:
            n_timeouts = rng.poisson(
                0.8 * scratch_write_mb / self.LUSTRE_STRESS_MB
            )
            for _ in range(int(n_timeouts)):
                t = record.start_time + span * rng.uniform(0.05, 0.95)
                out.append(RawMessage(
                    t, hosts[int(rng.integers(len(hosts)))], "kernel",
                    MESSAGE_CATALOG[MessageKind.LUSTRE_TIMEOUT].render(
                        rpc=int(rng.integers(1000, 99999)),
                        target="scratch-OST0007",
                        sent=int(t),
                        addr=f"{int(rng.integers(2**31)):x}",
                    ),
                ))
            if n_timeouts > 2 and rng.random() < 0.3:
                out.append(RawMessage(
                    mid, hosts[0], "kernel",
                    MESSAGE_CATALOG[MessageKind.LUSTRE_EVICTION].render(
                        target="scratch-MDT0000", server="mds1"),
                ))

        if cpu_idle_frac > 0.85 and span > 3600 and rng.random() < 0.15:
            out.append(RawMessage(
                mid, head, "kernel",
                MESSAGE_CATALOG[MessageKind.SOFT_LOCKUP].render(
                    cpu=int(rng.integers(16)), secs=int(rng.integers(10, 60)),
                    comm=f"{req.app}.x"[:15], pid=int(rng.integers(2000, 30000)),
                ),
            ))

        if record.exit_status is ExitStatus.FAILED and rng.random() < 0.5:
            out.append(RawMessage(
                record.end_time - 1, head, "kernel",
                MESSAGE_CATALOG[MessageKind.SEGFAULT].render(
                    comm=f"{req.app}.x"[:15],
                    pid=int(rng.integers(2000, 30000)),
                    addr=f"{int(rng.integers(2**32)):x}",
                    ip=f"{int(rng.integers(2**32)):x}",
                    sp=f"{int(rng.integers(2**32)):x}",
                    err=6,
                ),
            ))

        out.append(RawMessage(
            record.end_time, head, "sge",
            MESSAGE_CATALOG[MessageKind.JOB_EPILOG].render(
                jobid=req.jobid,
                status=record.exit_status.value),
        ))
        return out

    def generate_background(self, num_nodes: int, horizon: float,
                            rate_per_node_month: float = 0.05) -> list[RawMessage]:
        """Random hardware noise uncorrelated with any job."""
        rng = self._rng
        expected = rate_per_node_month * num_nodes * horizon / (30 * 86400.0)
        out: list[RawMessage] = []
        for _ in range(int(rng.poisson(expected))):
            t = rng.uniform(0, horizon)
            node = int(rng.integers(num_nodes))
            if rng.random() < 0.5:
                text = MESSAGE_CATALOG[MessageKind.MCE].render(
                    cpu=int(rng.integers(16)), bank="K8", nbank=4,
                    status="corrected")
            else:
                text = MESSAGE_CATALOG[MessageKind.IB_LINK_DOWN].render(
                    port=1, state="INIT")
            out.append(RawMessage(t, self._hostname(node), "kernel", text))
        return out
