"""Rationalized syslog (paper §1.3, [27]).

The stock Linux software stack emits "diverse message types ... in many
different formats"; TACC's rationalized syslog maps them all into one
uniform format and — the key addition — tags every message with the batch
job id of the job running on the emitting node.  This package provides:

* a catalog of the raw message shapes different subsystems emit
  (kernel OOM killer, Lustre client timeouts, MCE, soft lockups, ...),
* the rationalizer that parses those raw shapes into uniform records and
  attaches job ids from node occupancy,
* a failure-event generator driven by the simulated jobs' behaviour (jobs
  near memory capacity OOM; I/O-saturating jobs trip Lustre timeouts),
  which is what the ANCOR-style anomaly linkage consumes.
"""

from repro.syslogr.catalog import MESSAGE_CATALOG, MessageKind, RawMessage
from repro.syslogr.generator import SyslogGenerator
from repro.syslogr.rationalizer import (
    RationalizedMessage,
    Rationalizer,
    parse_rationalized_log,
)

__all__ = [
    "MessageKind",
    "RawMessage",
    "MESSAGE_CATALOG",
    "RationalizedMessage",
    "Rationalizer",
    "parse_rationalized_log",
    "SyslogGenerator",
]
