"""Catalog of raw syslog message shapes.

Each subsystem on a RHEL5-era HPC node logs in its own format; this module
enumerates the shapes the rationalizer must understand, with templates to
*render* a raw line (for the generator) and regexes to *recognize* one
(for the rationalizer).  The catalog is intentionally the single source of
truth — tests iterate it to prove render→recognize is lossless.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

__all__ = ["MessageKind", "RawMessage", "MESSAGE_CATALOG", "CatalogEntry"]


class MessageKind(enum.Enum):
    """Uniform categories after rationalization."""

    OOM_KILL = "oom_kill"
    LUSTRE_TIMEOUT = "lustre_timeout"
    LUSTRE_EVICTION = "lustre_eviction"
    SOFT_LOCKUP = "soft_lockup"
    MCE = "mce"
    IB_LINK_DOWN = "ib_link_down"
    NFS_STALE = "nfs_stale"
    SEGFAULT = "segfault"
    JOB_PROLOG = "job_prolog"
    JOB_EPILOG = "job_epilog"

    @property
    def severity(self) -> str:
        return {
            MessageKind.OOM_KILL: "err",
            MessageKind.LUSTRE_TIMEOUT: "warn",
            MessageKind.LUSTRE_EVICTION: "err",
            MessageKind.SOFT_LOCKUP: "err",
            MessageKind.MCE: "crit",
            MessageKind.IB_LINK_DOWN: "err",
            MessageKind.NFS_STALE: "warn",
            MessageKind.SEGFAULT: "warn",
            MessageKind.JOB_PROLOG: "info",
            MessageKind.JOB_EPILOG: "info",
        }[self]

    @property
    def is_failure(self) -> bool:
        """Whether this category indicates a fault (ANCOR linkage target)."""
        return self.severity in ("err", "crit")


@dataclass(frozen=True)
class RawMessage:
    """One raw syslog line before rationalization."""

    time: float
    host: str
    facility: str
    text: str


@dataclass(frozen=True)
class CatalogEntry:
    """Template/recognizer pair for one message kind."""

    kind: MessageKind
    facility: str
    template: str  # .format(**params)
    pattern: re.Pattern

    def render(self, **params) -> str:
        return self.template.format(**params)

    def match(self, text: str) -> dict[str, str] | None:
        m = self.pattern.match(text)
        return m.groupdict() if m else None


MESSAGE_CATALOG: dict[MessageKind, CatalogEntry] = {
    e.kind: e
    for e in [
        CatalogEntry(
            MessageKind.OOM_KILL,
            "kernel",
            "Out of memory: Killed process {pid} ({comm}) "
            "total-vm:{vm_kb}kB, anon-rss:{rss_kb}kB",
            re.compile(
                r"Out of memory: Killed process (?P<pid>\d+) \((?P<comm>[^)]+)\) "
                r"total-vm:(?P<vm_kb>\d+)kB, anon-rss:(?P<rss_kb>\d+)kB"
            ),
        ),
        CatalogEntry(
            MessageKind.LUSTRE_TIMEOUT,
            "kernel",
            "LustreError: {rpc}:{target}: Request sent has timed out "
            "for slow reply: [sent {sent}] req@{addr}",
            re.compile(
                r"LustreError: (?P<rpc>\d+):(?P<target>[\w-]+): Request sent has "
                r"timed out for slow reply: \[sent (?P<sent>\d+)\] req@(?P<addr>\w+)"
            ),
        ),
        CatalogEntry(
            MessageKind.LUSTRE_EVICTION,
            "kernel",
            "LustreError: {target}: This client was evicted by {server}; "
            "in progress operations using this service will fail.",
            re.compile(
                r"LustreError: (?P<target>[\w-]+): This client was evicted by "
                r"(?P<server>[\w-]+); in progress operations using this "
                r"service will fail\."
            ),
        ),
        CatalogEntry(
            MessageKind.SOFT_LOCKUP,
            "kernel",
            "BUG: soft lockup - CPU#{cpu} stuck for {secs}s! [{comm}:{pid}]",
            re.compile(
                r"BUG: soft lockup - CPU#(?P<cpu>\d+) stuck for (?P<secs>\d+)s! "
                r"\[(?P<comm>[^:]+):(?P<pid>\d+)\]"
            ),
        ),
        CatalogEntry(
            MessageKind.MCE,
            "kernel",
            "MCE: CPU {cpu}: Machine Check Exception: {bank} Bank {nbank}: "
            "{status}",
            re.compile(
                r"MCE: CPU (?P<cpu>\d+): Machine Check Exception: "
                r"(?P<bank>\w+) Bank (?P<nbank>\d+): (?P<status>\w+)"
            ),
        ),
        CatalogEntry(
            MessageKind.IB_LINK_DOWN,
            "kernel",
            "ib0: link down (port {port}, state {state})",
            re.compile(
                r"ib0: link down \(port (?P<port>\d+), state (?P<state>\w+)\)"
            ),
        ),
        CatalogEntry(
            MessageKind.NFS_STALE,
            "kernel",
            "NFS: Stale file handle on mount {mount} (dev {dev})",
            re.compile(
                r"NFS: Stale file handle on mount (?P<mount>[\w/]+) "
                r"\(dev (?P<dev>[\w:]+)\)"
            ),
        ),
        CatalogEntry(
            MessageKind.SEGFAULT,
            "kernel",
            "{comm}[{pid}]: segfault at {addr} ip {ip} sp {sp} error {err}",
            re.compile(
                r"(?P<comm>[\w.]+)\[(?P<pid>\d+)\]: segfault at (?P<addr>\w+) "
                r"ip (?P<ip>\w+) sp (?P<sp>\w+) error (?P<err>\d+)"
            ),
        ),
        CatalogEntry(
            MessageKind.JOB_PROLOG,
            "sge",
            "prolog: starting job {jobid} for user {user}",
            re.compile(
                r"prolog: starting job (?P<jobid>\d+) for user (?P<user>\w+)"
            ),
        ),
        CatalogEntry(
            MessageKind.JOB_EPILOG,
            "sge",
            "epilog: finished job {jobid} status {status}",
            re.compile(
                r"epilog: finished job (?P<jobid>\d+) status (?P<status>\w+)"
            ),
        ),
    ]
}
