"""The syslog rationalizer: diverse raw shapes → one uniform format,
tagged with job ids.

Uniform line format (tab-separated so message text can contain spaces)::

    <epoch>\t<host>\t<jobid|->\t<kind>\t<severity>\t<text>
"""

from __future__ import annotations

import io
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, TextIO

from repro.syslogr.catalog import MESSAGE_CATALOG, MessageKind, RawMessage

__all__ = ["RationalizedMessage", "Rationalizer", "parse_rationalized_log"]


@dataclass(frozen=True)
class RationalizedMessage:
    """One message in the uniform format."""

    time: float
    host: str
    jobid: str | None
    kind: MessageKind
    text: str

    @property
    def severity(self) -> str:
        return self.kind.severity

    def render(self) -> str:
        jid = self.jobid if self.jobid else "-"
        if "\t" in self.text or "\n" in self.text:
            raise ValueError("message text contains separator characters")
        return (
            f"{int(self.time)}\t{self.host}\t{jid}\t{self.kind.value}"
            f"\t{self.severity}\t{self.text}"
        )


class Rationalizer:
    """Maps raw messages to the uniform format and attaches job ids.

    Job attachment uses per-host occupancy intervals (from the scheduler's
    records): a message emitted by a node while job J ran on it is tagged
    with J — the capability the paper highlights as missing from stock
    syslog.
    """

    def __init__(self):
        # host -> sorted list of (start, end, jobid).
        self._occupancy: dict[str, list[tuple[float, float, str]]] = {}
        self._starts: dict[str, list[float]] = {}
        self._finalized = False

    def add_occupancy(self, host: str, start: float, end: float,
                      jobid: str) -> None:
        """Register that *jobid* held *host* over [start, end]."""
        if end < start:
            raise ValueError("occupancy interval reversed")
        if self._finalized:
            raise RuntimeError("occupancy already finalized")
        self._occupancy.setdefault(host, []).append((start, end, jobid))

    def finalize(self) -> None:
        """Sort occupancy for lookup; call after all intervals are added."""
        for host, ivals in self._occupancy.items():
            ivals.sort()
            self._starts[host] = [s for s, _, _ in ivals]
        self._finalized = True

    def job_at(self, host: str, time: float) -> str | None:
        """Job occupying *host* at *time*, if any."""
        if not self._finalized:
            raise RuntimeError("call finalize() before lookups")
        ivals = self._occupancy.get(host)
        if not ivals:
            return None
        i = bisect_right(self._starts[host], time) - 1
        if i >= 0:
            s, e, jid = ivals[i]
            if s <= time <= e:
                return jid
        return None

    def rationalize(self, raw: RawMessage) -> RationalizedMessage | None:
        """Parse one raw line; returns None for unrecognized chatter.

        Unrecognized messages are *counted*, not raised — production logs
        are full of benign noise — but recognized-yet-malformed parameter
        sets raise, because those indicate a catalog bug.
        """
        for kind, entry in MESSAGE_CATALOG.items():
            params = entry.match(raw.text)
            if params is None:
                continue
            jobid = params.get("jobid") or self.job_at(raw.host, raw.time)
            return RationalizedMessage(
                time=raw.time,
                host=raw.host,
                jobid=jobid,
                kind=kind,
                text=raw.text,
            )
        return None

    def rationalize_stream(
        self, raws: list[RawMessage]
    ) -> tuple[list[RationalizedMessage], int]:
        """Process a batch; returns (messages, unrecognized_count)."""
        out: list[RationalizedMessage] = []
        unknown = 0
        for raw in raws:
            m = self.rationalize(raw)
            if m is None:
                unknown += 1
            else:
                out.append(m)
        out.sort(key=lambda m: (m.time, m.host))
        return out, unknown


def write_rationalized_log(messages: list[RationalizedMessage],
                           sink: TextIO) -> None:
    """Serialize messages in the uniform format."""
    for m in messages:
        sink.write(m.render() + "\n")


def parse_rationalized_log(source: TextIO | str) -> Iterator[RationalizedMessage]:
    """Parse the uniform format back; malformed lines raise ValueError."""
    handle = io.StringIO(source) if isinstance(source, str) else source
    for lineno, raw in enumerate(handle, 1):
        line = raw.rstrip("\n")
        if not line:
            continue
        parts = line.split("\t")
        if len(parts) != 6:
            raise ValueError(
                f"rationalized log line {lineno}: {len(parts)} fields"
            )
        t, host, jid, kind, severity, text = parts
        try:
            kind_e = MessageKind(kind)
        except ValueError as e:
            raise ValueError(
                f"rationalized log line {lineno}: unknown kind {kind!r}"
            ) from e
        if severity != kind_e.severity:
            raise ValueError(
                f"rationalized log line {lineno}: severity mismatch"
            )
        yield RationalizedMessage(
            time=float(t),
            host=host,
            jobid=None if jid == "-" else jid,
            kind=kind_e,
            text=text,
        )
