"""Multi-cluster federation: sharded warehouses, scatter-gather queries.

The paper's premise is facility-wide management built from per-resource
pipelines — Ranger is one instance of a pattern TACC ran across the
whole machine room.  This package generalizes the single-warehouse
assumption: every cluster owns its own archive and warehouse *shard*
(with its own ingest ledger), and :class:`FederatedWarehouse` answers
cross-cluster questions by scattering a query to every shard's
:class:`~repro.xdmod.snapshot.WarehouseSnapshot` and gathering the
per-shard aggregates with the PR 2 partial-merge algebra (node-hour-
weighted means merge exactly; see docs/FEDERATION.md).

A single-cluster federation is byte-identical to the classic
single-warehouse path: the per-shard pipeline *is* the existing
pipeline, and the gather step over one shard is the identity.
"""

from repro.federation.federated import FederatedWarehouse
from repro.federation.layout import FederationLayout, ShardSpec
from repro.federation.merge import (
    merge_group_results,
    merge_series,
    series_merge_mode,
)
from repro.federation.simulate import ClusterPlan, FederatedFacility

__all__ = [
    "FederatedWarehouse",
    "FederationLayout",
    "ShardSpec",
    "ClusterPlan",
    "FederatedFacility",
    "merge_group_results",
    "merge_series",
    "series_merge_mode",
]
