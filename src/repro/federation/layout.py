"""On-disk layout of a federation: one directory, one shard per cluster.

::

    <root>/
        federation.json          # manifest: clusters, seeds, paths
        <cluster>.sqlite         # that cluster's warehouse shard
        archives/<cluster>/      # that cluster's stats archive (slow path)

Each shard is a complete, self-contained warehouse — its own ingest
ledger, its own generation stamp, queryable on its own with every
existing tool (``repro-report --warehouse <root>/<cluster>.sqlite``).
The manifest is what makes the directory a *federation*: it names the
member clusters so every consumer (CLI, service, benchmarks) resolves
the same shard set in the same order.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["FederationLayout", "ShardSpec", "MANIFEST_NAME"]

MANIFEST_NAME = "federation.json"

#: Manifest schema version; bumped on incompatible layout changes.
LAYOUT_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """One member cluster of a federation.

    ``system`` is the base archetype name (``"ranger"``); ``cluster``
    is the shard's name and defaults to the system name.  ``seed`` and
    the scaling knobs are recorded so a later ``--append`` run can
    regenerate the identical simulation stream.
    """

    cluster: str
    system: str
    seed: int
    nodes: int
    days: float
    users: int

    def __post_init__(self):
        if not self.cluster or "/" in self.cluster:
            raise ValueError(f"bad cluster name {self.cluster!r}")


class FederationLayout:
    """Resolves shard paths inside one federation directory."""

    def __init__(self, root: str | Path, shards: list[ShardSpec]):
        names = [s.cluster for s in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names: {names}")
        self.root = Path(root)
        #: cluster name -> spec, in manifest (creation) order.
        self.shards: dict[str, ShardSpec] = {s.cluster: s for s in shards}

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, root: str | Path,
               shards: list[ShardSpec]) -> "FederationLayout":
        """Create the directory (idempotent) and write the manifest."""
        layout = cls(root, shards)
        layout.root.mkdir(parents=True, exist_ok=True)
        layout.save()
        return layout

    @classmethod
    def open(cls, root: str | Path) -> "FederationLayout":
        """Open an existing federation by reading its manifest."""
        path = Path(root) / MANIFEST_NAME
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise FileNotFoundError(
                f"{path} not found — not a federation directory "
                f"(create one with repro-simulate --clusters)") from None
        if payload.get("version") != LAYOUT_VERSION:
            raise ValueError(f"unsupported federation layout version "
                             f"{payload.get('version')!r} in {path}")
        shards = [ShardSpec(**entry) for entry in payload["clusters"]]
        return cls(root, shards)

    def save(self) -> None:
        """(Re)write the manifest."""
        payload = {
            "version": LAYOUT_VERSION,
            "clusters": [asdict(s) for s in self.shards.values()],
        }
        (self.root / MANIFEST_NAME).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # -- path resolution --------------------------------------------------

    @property
    def clusters(self) -> list[str]:
        """Member cluster names, sorted (the canonical scatter order)."""
        return sorted(self.shards)

    def warehouse_path(self, cluster: str) -> str:
        """The shard warehouse file for *cluster*."""
        self._check(cluster)
        return str(self.root / f"{cluster}.sqlite")

    def archive_path(self, cluster: str) -> str:
        """The stats-archive directory for *cluster* (slow path only)."""
        self._check(cluster)
        return str(self.root / "archives" / cluster)

    def _check(self, cluster: str) -> None:
        if cluster not in self.shards:
            raise KeyError(f"unknown cluster {cluster!r}; federation has "
                           f"{self.clusters}")
