"""Simulate a whole federation: N facilities, one shard each.

:class:`FederatedFacility` drives one
:class:`~repro.facility.Facility` per member cluster into that
cluster's own warehouse shard (and, on the slow path, its own stats
archive with its own ingest ledger).  Per-shard work reuses the
existing machinery verbatim — the PR 1 process-parallel node replay
and the PR 5 ledger-driven incremental ingest both run *inside* a
shard — and ``shard_workers > 1`` additionally fans whole shards out
over a process pool (each shard is a disjoint file set with fully
seeded RNG streams, so the fan-out is deterministic and
embarrassingly parallel).

Byte-identity invariant: a one-cluster federation executes exactly the
calls ``repro-simulate`` makes for a plain warehouse — same config,
same seed, same ingest knobs — so the shard file's rows are identical
to the legacy single-warehouse output (asserted by tests and the
``federation-smoke`` CI job).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import FacilityConfig
from repro.facility import Facility
from repro.federation.layout import FederationLayout, ShardSpec
from repro.ingest.warehouse import Warehouse
from repro.telemetry.metrics import get_registry
from repro.util.timeutil import DAY

__all__ = ["ClusterPlan", "FederatedFacility"]


@dataclass(frozen=True)
class ClusterPlan:
    """One member cluster: a (possibly renamed) config plus its seed.

    When ``cluster`` differs from ``config.name`` (two shards of the
    same archetype, e.g. ``ranger-a``/``ranger-b``) the config is
    renamed, which also re-keys the RNG streams — the two shards draw
    independent workloads.
    """

    cluster: str
    config: FacilityConfig
    seed: int

    def effective_config(self) -> FacilityConfig:
        """The config actually simulated (renamed to the cluster)."""
        if self.cluster == self.config.name:
            return self.config
        return dataclasses.replace(self.config, name=self.cluster)


def _run_shard(cluster: str, config: FacilityConfig, seed: int,
               warehouse_path: str, archive_dir: str | None,
               knobs: dict) -> dict:
    """Simulate + ingest one shard (module-level: runs in pool workers).

    Mirrors the ``repro-simulate`` main-path calls exactly, which is
    what the single-cluster byte-identity invariant rests on.
    """
    facility = Facility(config, seed=seed)
    warehouse = Warehouse(warehouse_path,
                          fast_writes=knobs.get("fast_writes", False))
    try:
        append = knobs.get("append", False)
        if config.name in warehouse.systems() and not append:
            raise ValueError(
                f"system {config.name!r} already present in shard "
                f"{warehouse_path}; use append=True to extend it")
        if archive_dir is not None:
            run = facility.run_with_files(
                archive_dir, warehouse=warehouse,
                workers=knobs.get("workers", 1),
                ingest_workers=knobs.get("ingest_workers", 1),
                batch_size=knobs.get("batch_size", 256),
                error_policy=knobs.get("error_policy", "strict"),
                max_retries=knobs.get("max_retries", 2),
                ingest_mode="append" if append else "full",
                ingest_through_day=knobs.get("through_day"),
                archive_format=knobs.get("archive_format", "text"),
                synthesis=knobs.get("synthesis", "fast"),
            )
        else:
            run = facility.run(
                warehouse=warehouse,
                with_syslog=knobs.get("with_syslog", True),
            )
        q = run.query()
        report = run.ingest_report
        summary = {
            "cluster": cluster,
            "system": config.name,
            "warehouse": warehouse_path,
            "jobs": len(run.records),
            "summarized": len(q),
            "node_hours": q.node_hours,
            "efficiency": 1.0 - q.weighted_mean("cpu_idle"),
            "mode": report.mode if report is not None else "fast",
            "delta": (str(report.delta)
                      if report is not None and report.delta is not None
                      else None),
        }
        return summary
    finally:
        warehouse.close()


def _run_shard_star(args: tuple) -> dict:
    return _run_shard(*args)


class FederatedFacility:
    """Simulates every member cluster of a federation into its shard."""

    def __init__(self, layout: FederationLayout, plans: list[ClusterPlan]):
        names = sorted(p.cluster for p in plans)
        if names != layout.clusters:
            raise ValueError(f"plans {names} do not match federation "
                             f"clusters {layout.clusters}")
        self.layout = layout
        self.plans = {p.cluster: p for p in plans}

    @classmethod
    def plan(cls, root: str, plans: list[ClusterPlan],
             ) -> "FederatedFacility":
        """Create the federation directory + manifest from the plans."""
        shards = [
            ShardSpec(cluster=p.cluster, system=p.config.name, seed=p.seed,
                      nodes=p.config.num_nodes,
                      days=p.config.horizon / DAY,
                      users=p.config.n_users)
            for p in plans
        ]
        return cls(FederationLayout.create(root, shards), plans)

    def run(self, archive: bool = False, shard_workers: int = 1,
            **knobs) -> dict[str, dict]:
        """Run every shard; returns ``{cluster: summary dict}``.

        *archive* selects the slow path (per-cluster stats archive +
        ledger ingest, required for later ``append=True`` runs).
        ``shard_workers > 1`` fans shards over a process pool; the
        remaining *knobs* (``workers``, ``ingest_workers``,
        ``batch_size``, ``error_policy``, ``max_retries``, ``append``,
        ``through_day``, ``archive_format``, ``synthesis``,
        ``fast_writes``, ``with_syslog``) forward to each shard's run
        exactly as ``repro-simulate`` would pass them.
        """
        if shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        if knobs.get("append") and not archive:
            raise ValueError("append=True needs archive=True (the ledger "
                             "lives with the archive path)")
        jobs = []
        for cluster in self.layout.clusters:
            plan = self.plans[cluster]
            jobs.append((
                cluster,
                plan.effective_config(),
                plan.seed,
                self.layout.warehouse_path(cluster),
                self.layout.archive_path(cluster) if archive else None,
                knobs,
            ))

        registry = get_registry()
        registry.counter("federation.ingest.shards").inc(len(jobs))
        if shard_workers == 1 or len(jobs) == 1:
            results = [_run_shard(*job) for job in jobs]
        else:
            import multiprocessing

            with multiprocessing.Pool(min(shard_workers, len(jobs))) as pool:
                results = pool.map(_run_shard_star, jobs)
        out = {}
        for summary in results:
            registry.counter(
                f"federation.ingest.{summary['cluster']}.jobs").inc(
                summary["jobs"])
            out[summary["cluster"]] = summary
        return out
