"""Partial-merge kernels for scatter-gather queries across shards.

Everything the reports aggregate is either *extensive* (job counts,
node-hours, system-wide rates: sums of per-job or per-node
contributions) or a node-hour/node-count *weighted mean*.  Both merge
exactly from per-shard partials::

    count  = sum(count_i)
    hours  = sum(hours_i)
    mean   = sum(mean_i * hours_i) / sum(hours_i)

which is the same algebra :func:`repro.ingest.summarize.merge_job_partials`
uses to fold per-host partials into a job summary — the federation
gather step is that reduction one level up, over per-cluster
aggregates instead of per-host samples.  The kernels are deterministic:
inputs are folded in the caller-supplied order (callers pass shards
sorted by cluster name), so the same shards always produce the same
floats.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.xdmod.query import GroupResult

__all__ = ["merge_group_results", "merge_series", "series_merge_mode",
           "CLUSTER_DIM"]

#: The virtual dimension the federation layer adds to group-by: its
#: value is the system (cluster) name a job's shard carries.  It never
#: appears inside a single shard's frame — the gather step owns it.
CLUSTER_DIM = "cluster"


def merge_group_results(
    parts: Iterable[Sequence[GroupResult]],
) -> list[GroupResult]:
    """Merge per-shard ``group_by`` outputs into one cross-shard result.

    Groups are unified by their ``keys`` tuple; ``job_count`` and
    ``node_hours`` sum, and every weighted mean merges node-hour-
    weighted.  The result is ordered like the single-shard kernel:
    descending node-hours (ties broken by key for determinism).
    """
    acc: dict[tuple[str, ...], dict] = {}
    for shard_groups in parts:
        for g in shard_groups:
            slot = acc.get(g.keys)
            if slot is None:
                slot = acc[g.keys] = {
                    "key": g.key,
                    "job_count": 0,
                    "node_hours": 0.0,
                    "wsums": dict.fromkeys(g.weighted_means, 0.0),
                }
            slot["job_count"] += g.job_count
            slot["node_hours"] += g.node_hours
            for m, mean in g.weighted_means.items():
                slot["wsums"][m] = (slot["wsums"].get(m, 0.0)
                                    + mean * g.node_hours)
    out = []
    for keys, slot in acc.items():
        hours = slot["node_hours"]
        out.append(GroupResult(
            key=slot["key"],
            job_count=slot["job_count"],
            node_hours=hours,
            weighted_means={
                m: (ws / hours if hours > 0 else float("nan"))
                for m, ws in slot["wsums"].items()
            },
            keys=keys,
        ))
    out.sort(key=lambda g: (-g.node_hours, g.keys))
    return out


def series_merge_mode(name: str) -> str:
    """How a stored system series aggregates across clusters.

    ``"sum"`` for extensive series (active nodes, system FLOPS,
    aggregate I/O and fabric rates), ``"mean"`` for intensive ones
    (CPU-state fractions, per-node memory) — the latter merge weighted
    by each cluster's active nodes at that instant.
    """
    if name.startswith("cpu_") or name.endswith("_per_node"):
        return "mean"
    return "sum"


def merge_series(
    parts: Sequence[tuple[np.ndarray, np.ndarray]],
    mode: str = "sum",
    weights: Sequence[tuple[np.ndarray, np.ndarray]] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-shard ``(times, values)`` series onto the union grid.

    Shards sample independently, so the merged series lives on the
    union of the time points.  With ``mode="sum"`` a shard contributes
    zero where it has no sample (a cluster that is down adds nothing to
    facility FLOPS); with ``mode="mean"`` each shard's value is weighted
    by the matching *weights* series (its active-node count), yielding
    the facility-wide per-node average.
    """
    if mode not in ("sum", "mean"):
        raise ValueError(f"unknown merge mode {mode!r}")
    if mode == "mean" and (weights is None or len(weights) != len(parts)):
        raise ValueError("mode='mean' needs one weight series per part")
    if not parts:
        return np.array([]), np.array([])
    grid = np.unique(np.concatenate([t for t, _ in parts]))
    num = np.zeros(grid.shape, dtype=float)
    den = np.zeros(grid.shape, dtype=float)
    for i, (t, v) in enumerate(parts):
        pos = np.searchsorted(grid, t)
        if mode == "sum":
            np.add.at(num, pos, v)
        else:
            wt, wv = weights[i]
            if wt.shape != t.shape or not np.array_equal(wt, t):
                # Weight series on a different grid: align by lookup.
                wv = wv[np.searchsorted(wt, t).clip(0, len(wv) - 1)]
            np.add.at(num, pos, v * wv)
            np.add.at(den, pos, wv)
    if mode == "mean":
        with np.errstate(divide="ignore", invalid="ignore"):
            num = np.where(den > 0, num / den, 0.0)
    return grid, num
