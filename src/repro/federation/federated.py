"""`FederatedWarehouse`: scatter-gather queries over warehouse shards.

One federation = a set of named shards, each a complete
:class:`~repro.ingest.warehouse.Warehouse` with its own ingest ledger
and generation stamp.  Queries scatter to every relevant shard's
:class:`~repro.xdmod.snapshot.WarehouseSnapshot` — so each shard's
columnar frames, memo cache and O(delta) refresh keep working exactly
as on a single warehouse — and the partial results gather through
:mod:`repro.federation.merge`.

The ``cluster`` dimension is virtual: it never exists inside a shard's
frame.  The scatter step knows which shard produced which partial, so
``group_by(("cluster", "app"))`` tags per-shard groups with their
cluster name, while ``group_by("app")`` collapses the dimension by
merging per-shard partials with the node-hour-weighted algebra.

Single-shard federations degenerate to the classic path: the scatter
set has one member, the gather is the identity, and every query result
(and the shard file itself) is identical to the single-warehouse
output.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.federation.layout import FederationLayout
from repro.federation.merge import (
    CLUSTER_DIM,
    merge_group_results,
    merge_series,
    series_merge_mode,
)
from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.telemetry.metrics import get_registry
from repro.util.tables import render_table
from repro.xdmod.query import DIMENSIONS, GroupResult, JobQuery
from repro.xdmod.snapshot import WarehouseSnapshot

__all__ = ["FederatedWarehouse"]


class FederatedWarehouse:
    """A queryable set of named warehouse shards."""

    def __init__(self, shards: Mapping[str, Warehouse]):
        if not shards:
            raise ValueError("a federation needs at least one shard")
        #: cluster name -> warehouse, iterated in sorted-name order.
        self.shards: dict[str, Warehouse] = {
            name: shards[name] for name in sorted(shards)
        }
        self._system_map: dict[str, str] | None = None

    @classmethod
    def open(cls, root: str | Path, threadsafe: bool = False,
             missing_ok: bool = False) -> "FederatedWarehouse":
        """Open every shard of the federation directory at *root*.

        With ``missing_ok`` a cluster whose shard file does not exist
        (e.g. its first ingest crashed) is skipped instead of failing
        the whole federation — degraded-shard operation.
        """
        layout = FederationLayout.open(root)
        shards: dict[str, Warehouse] = {}
        for cluster in layout.clusters:
            path = layout.warehouse_path(cluster)
            if not Path(path).exists():
                if missing_ok:
                    continue
                raise FileNotFoundError(f"shard warehouse missing for "
                                        f"cluster {cluster!r}: {path}")
            shards[cluster] = Warehouse(path, threadsafe=threadsafe)
        return cls(shards)

    def close(self) -> None:
        """Release every shard connection."""
        for wh in self.shards.values():
            wh.close()

    # -- topology ---------------------------------------------------------

    @property
    def clusters(self) -> list[str]:
        """Shard names, sorted — the canonical scatter order."""
        return list(self.shards)

    def shard(self, cluster: str) -> Warehouse:
        """The warehouse of one shard."""
        if cluster not in self.shards:
            raise KeyError(f"unknown cluster {cluster!r}; federation "
                           f"has {self.clusters}")
        return self.shards[cluster]

    def systems(self) -> dict[str, list[str]]:
        """Cluster name -> systems stored in that shard."""
        return {name: wh.systems() for name, wh in self.shards.items()}

    def all_systems(self) -> list[str]:
        """Every system across every shard, in scatter order."""
        return [s for systems in self.systems().values()
                for s in sorted(systems)]

    def shard_of(self, system: str) -> str:
        """The cluster whose shard stores *system*.

        A system may live in exactly one shard; duplicates are a
        configuration error surfaced here.
        """
        if self._system_map is None:
            mapping: dict[str, str] = {}
            for cluster, systems in self.systems().items():
                for system_name in systems:
                    if system_name in mapping:
                        raise ValueError(
                            f"system {system_name!r} present in shards "
                            f"{mapping[system_name]!r} and {cluster!r}")
                    mapping[system_name] = cluster
            self._system_map = mapping
        if system not in self._system_map:
            raise KeyError(f"unknown system {system!r}; federation has "
                           f"{self.all_systems()}")
        return self._system_map[system]

    # -- snapshots --------------------------------------------------------

    def snapshots(self) -> dict[str, WarehouseSnapshot]:
        """The current frozen view of every shard, resolved once.

        Callers pass the returned dict through a whole logical request
        so each of its sub-queries sees one generation per shard, the
        same pinning contract the service layer applies to a single
        warehouse.
        """
        return {
            name: WarehouseSnapshot.for_warehouse(wh)
            for name, wh in self.shards.items()
        }

    def stamp(self, snapshots: dict[str, WarehouseSnapshot] | None = None,
              ) -> tuple:
        """A combined cache stamp: any shard moving moves the stamp."""
        snaps = snapshots or self.snapshots()
        return tuple((name, snaps[name].stamp) for name in snaps)

    def generations(self) -> dict[str, int]:
        """Per-shard warehouse generation (shard identity for clients)."""
        return {name: wh.generation for name, wh in self.shards.items()}

    def refresh(self) -> dict[str, int]:
        """Adopt external commits on every shard; returns generations."""
        for wh in self.shards.values():
            wh.reread_generation()
        # An external write may have added a system to a shard; the
        # routing map is rebuilt lazily on next use.
        self._system_map = None
        return self.generations()

    # -- scatter-gather queries ------------------------------------------

    def query(self, system: str,
              snapshots: dict[str, WarehouseSnapshot] | None = None,
              ) -> JobQuery:
        """A single-system query, routed to the owning shard.

        This *is* the classic path — same class, same snapshot, same
        memoization — which is what makes one-cluster federations
        answer-identical to a plain warehouse.
        """
        cluster = self.shard_of(system)
        snap = (snapshots or {}).get(cluster)
        return JobQuery(self.shards[cluster], system, snapshot=snap)

    def _scatter_units(self, systems: list[str] | None,
                       ) -> list[tuple[str, str]]:
        """(cluster, system) pairs to scatter over, in canonical order."""
        if systems is None:
            return [(self.shard_of(s), s) for s in self.all_systems()]
        return [(self.shard_of(s), s) for s in sorted(systems)]

    def group_by(self, dimension: str | tuple[str, ...],
                 metrics: tuple[str, ...] = SUMMARY_METRICS,
                 systems: list[str] | None = None,
                 snapshots: dict[str, WarehouseSnapshot] | None = None,
                 ) -> list[GroupResult]:
        """Cross-cluster weighted aggregation, ``cluster``-dimension aware.

        Scatter: each member system runs the ordinary per-shard
        :meth:`~repro.xdmod.query.JobQuery.group_by` (hitting that
        shard's snapshot memo).  Gather: if ``"cluster"`` is among the
        dimensions the per-shard groups are tagged with their cluster
        name at that key position; otherwise partials merge across
        clusters with the node-hour-weighted kernels.
        """
        dims = ((dimension,) if isinstance(dimension, str)
                else tuple(dimension))
        if not dims:
            raise ValueError("group_by needs at least one dimension")
        for d in dims:
            if d != CLUSTER_DIM and d not in DIMENSIONS:
                raise ValueError(f"unknown dimension {d!r}")
        if dims.count(CLUSTER_DIM) > 1:
            raise ValueError("duplicate 'cluster' dimension")
        rest = tuple(d for d in dims if d != CLUSTER_DIM)
        cluster_pos = dims.index(CLUSTER_DIM) if CLUSTER_DIM in dims else None

        registry = get_registry()
        registry.counter("federation.scatter.group_by").inc()
        parts: list[list[GroupResult]] = []
        for cluster, system in self._scatter_units(systems):
            registry.counter(f"federation.shard_queries.{cluster}").inc()
            q = self.query(system, snapshots)
            if rest:
                groups = q.group_by(rest if len(rest) > 1 else rest[0],
                                    metrics=metrics)
            elif len(q) == 0:
                groups = []
            else:
                groups = [GroupResult(
                    key=system, job_count=len(q),
                    node_hours=q.node_hours,
                    weighted_means=q.weighted_means(metrics),
                    keys=(system,),
                )]
            if cluster_pos is not None and rest:
                groups = [self._tag_cluster(g, system, cluster_pos)
                          for g in groups]
            parts.append(groups)
        merged = merge_group_results(parts)
        registry.counter("federation.merge.groups").inc(len(merged))
        return merged

    @staticmethod
    def _tag_cluster(g: GroupResult, cluster: str, pos: int) -> GroupResult:
        """Insert the cluster name into a group key at position *pos*."""
        keys = g.keys[:pos] + (cluster,) + g.keys[pos:]
        return GroupResult(
            key="|".join(keys) if len(keys) > 1 else keys[0],
            job_count=g.job_count, node_hours=g.node_hours,
            weighted_means=g.weighted_means, keys=keys,
        )

    def series_metrics(self) -> list[str]:
        """Series names stored by at least one member system."""
        names: set[str] = set()
        for cluster, system in self._scatter_units(None):
            names.update(self.shards[cluster].series_metrics(system))
        return sorted(names)

    def timeseries(self, series: str,
                   snapshots: dict[str, WarehouseSnapshot] | None = None,
                   ):
        """One series merged across clusters onto the union time grid.

        Extensive series sum; intensive ones merge as active-node-
        weighted means (see :func:`repro.federation.merge.series_merge_mode`).
        Systems without the series (e.g. no ``share`` mount) contribute
        nothing.  Returns ``(times, values)``.
        """
        snaps = snapshots or self.snapshots()
        get_registry().counter("federation.scatter.timeseries").inc()
        parts, weights = [], []
        mode = series_merge_mode(series)
        for cluster, system in self._scatter_units(None):
            snap = snaps[cluster]
            try:
                t, v = snap.series(system, series)
            except KeyError:
                continue
            parts.append((t, v))
            if mode == "mean":
                weights.append(snap.series(system, "active_nodes"))
        if not parts:
            raise KeyError(f"no series {series!r} in any shard")
        return merge_series(parts, mode=mode,
                            weights=weights if mode == "mean" else None)

    # -- cross-cluster rollup --------------------------------------------

    def overview(self,
                 snapshots: dict[str, WarehouseSnapshot] | None = None,
                 ) -> dict:
        """The federation rollup: per-cluster facts plus merged totals.

        The totals row is the ``cluster`` dimension collapsed — the
        same weighted merge every cross-cluster ``group_by`` uses.
        """
        snaps = snapshots or self.snapshots()
        per_cluster = self.group_by(CLUSTER_DIM, snapshots=snaps)
        total = None
        if per_cluster:
            total = merge_group_results([[
                GroupResult(key="all", job_count=g.job_count,
                            node_hours=g.node_hours,
                            weighted_means=g.weighted_means, keys=("all",))
                for g in per_cluster]])[0]
        clusters = {}
        for g in sorted(per_cluster, key=lambda g: g.keys):
            system = g.keys[0]
            cluster = self.shard_of(system)
            info = snaps[cluster].system_info(system)
            clusters[system] = {
                "cluster": cluster,
                "jobs": g.job_count,
                "node_hours": g.node_hours,
                "efficiency": 1.0 - g.weighted_means["cpu_idle"],
                "nodes": info["num_nodes"],
                "peak_tflops": info["peak_tflops"],
                "generation": self.shards[cluster].generation,
            }
        return {
            "clusters": clusters,
            "total": {
                "jobs": total.job_count if total else 0,
                "node_hours": total.node_hours if total else 0.0,
                "efficiency": (1.0 - total.weighted_means["cpu_idle"]
                               if total else 0.0),
            },
        }

    def render_overview(self) -> str:
        """The federation rollup as a text table (CLI and smoke jobs)."""
        data = self.overview()
        rows = [
            {"cluster": name, "nodes": f"{facts['nodes']:,}",
             "jobs": f"{facts['jobs']:,}",
             "node-hours": f"{facts['node_hours']:,.0f}",
             "efficiency": f"{facts['efficiency']:.1%}"}
            for name, facts in data["clusters"].items()
        ]
        total = data["total"]
        rows.append({
            "cluster": "TOTAL", "nodes": "",
            "jobs": f"{total['jobs']:,}",
            "node-hours": f"{total['node_hours']:,.0f}",
            "efficiency": f"{total['efficiency']:.1%}",
        })
        return render_table(
            rows, ["cluster", "nodes", "jobs", "node-hours", "efficiency"],
            title=f"FEDERATION OVERVIEW — {len(self.clusters)} clusters",
        )

    # -- provenance -------------------------------------------------------

    def ledgers(self) -> dict[str, dict[str, dict]]:
        """Per-cluster, per-system ingest ledgers (for repro-diagnose)."""
        out: dict[str, dict[str, dict]] = {}
        for cluster, wh in self.shards.items():
            out[cluster] = {
                system: wh.ledger_map(system) for system in wh.systems()
            }
        return out
