"""Error policies, quarantine provenance, and ingest health accounting.

Facility-scale ingest runs unattended against thousands of nodes, where
truncated archives, bit-flipped values, and OOM-killed workers are
routine.  This module is the single vocabulary the whole ingest path
(parser → archive → parallel scan → pipeline → warehouse) uses to decide
what happens when input is malformed:

* :class:`ErrorPolicy` — ``strict`` fails loudly on the first malformed
  record (the pre-existing behaviour, still the default); ``quarantine``
  excludes every host with any malformed record from the warehouse so
  the loaded data is byte-identical to ingesting only the clean hosts;
  ``repair`` salvages each corrupt host's parseable lines and loads the
  host as *degraded*.  All three record full provenance for every
  malformed record.
* :class:`QuarantinedRecord` — one malformed record's provenance:
  host, file, line number, exception, and an excerpt of the offending
  text.
* :class:`IngestHealth` — the per-ingest accounting (hosts ok /
  degraded / dropped, quarantined records, per-host retry counts) that
  :class:`~repro.ingest.pipeline.IngestReport` carries and the CLIs
  surface.  It serializes to a sidecar ``quarantine/`` directory
  (``records.jsonl`` + ``summary.json``) and to a JSON blob the
  warehouse stores per system.

This module is a dependency leaf (stdlib only) so both
``repro.tacc_stats`` and ``repro.ingest`` can import it without cycles.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from pathlib import Path

__all__ = [
    "ErrorPolicy",
    "HostScanError",
    "IngestHealth",
    "QuarantinedRecord",
    "QUARANTINE_DIRNAME",
]

#: Reserved directory name for the sidecar quarantine report.  It lives
#: inside the archive root by default, so :meth:`HostArchive.hostnames`
#: must never treat it as a host directory.
QUARANTINE_DIRNAME = "quarantine"


class ErrorPolicy(str, Enum):
    """What the ingest path does with malformed input.

    Subclasses :class:`str` so call sites can pass the plain strings
    ``"strict"`` / ``"quarantine"`` / ``"repair"`` (e.g. straight from a
    CLI flag) and leaf modules can compare without importing this enum.
    """

    STRICT = "strict"
    QUARANTINE = "quarantine"
    REPAIR = "repair"


class HostScanError(RuntimeError):
    """A host's scan kept failing after every retry (worker death or
    timeout); raised only under the ``strict`` policy."""

    def __init__(self, hostname: str, attempts: int, reason: str):
        super().__init__(
            f"host {hostname!r} failed after {attempts} attempt(s): {reason}"
        )
        self.hostname = hostname
        self.attempts = attempts
        self.reason = reason


@dataclass(frozen=True)
class QuarantinedRecord:
    """Provenance for one malformed record (or one unreadable file).

    ``lineno`` is ``None`` when the whole file was quarantined (e.g. a
    corrupt gzip stream or a worker that died scanning it) rather than a
    single line.  ``text`` is a bounded excerpt of the offending input.
    """

    hostname: str
    path: str
    lineno: int | None
    kind: str
    error: str
    text: str = ""

    def to_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "QuarantinedRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**d)


@dataclass
class IngestHealth:
    """Accounting for one ingest pass under any error policy.

    A host is *ok* when it parsed clean (possibly after transient worker
    retries), *degraded* when the ``repair`` policy salvaged it with
    some records quarantined, and *dropped* when it was excluded from
    the warehouse entirely (``quarantine`` policy, an unsalvageable
    stream, or retries exhausted).
    """

    policy: str = ErrorPolicy.STRICT.value
    hosts_ok: list[str] = field(default_factory=list)
    hosts_degraded: list[str] = field(default_factory=list)
    hosts_dropped: list[str] = field(default_factory=list)
    quarantined: list[QuarantinedRecord] = field(default_factory=list)
    retries: dict[str, int] = field(default_factory=dict)

    # -- recording ----------------------------------------------------------

    def record_ok(self, hostname: str) -> None:
        """Mark *hostname* as fully ingested."""
        self.hosts_ok.append(hostname)

    def record_degraded(self, hostname: str,
                        records: tuple[QuarantinedRecord, ...]) -> None:
        """Mark *hostname* as salvaged with *records* quarantined."""
        self.hosts_degraded.append(hostname)
        self.quarantined.extend(records)

    def record_dropped(self, hostname: str,
                       records: tuple[QuarantinedRecord, ...]) -> None:
        """Mark *hostname* as excluded, quarantining *records*."""
        self.hosts_dropped.append(hostname)
        self.quarantined.extend(records)

    def record_retry(self, hostname: str) -> None:
        """Count one transient-failure retry charged to *hostname*."""
        self.retries[hostname] = self.retries.get(hostname, 0) + 1

    # -- reading ------------------------------------------------------------

    @property
    def records_quarantined(self) -> int:
        """Total quarantined records across all hosts."""
        return len(self.quarantined)

    @property
    def total_retries(self) -> int:
        """Total transient-failure retries across all hosts."""
        return sum(self.retries.values())

    def summary(self) -> dict:
        """The counts-only view (what ``summary.json`` stores)."""
        return {
            "policy": self.policy,
            "hosts_ok": len(self.hosts_ok),
            "hosts_degraded": len(self.hosts_degraded),
            "hosts_dropped": len(self.hosts_dropped),
            "records_quarantined": self.records_quarantined,
            "retries": self.total_retries,
        }

    def __str__(self) -> str:
        s = self.summary()
        return (
            f"policy={s['policy']} ok={s['hosts_ok']} "
            f"degraded={s['hosts_degraded']} dropped={s['hosts_dropped']} "
            f"quarantined={s['records_quarantined']} retries={s['retries']}"
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Full JSON-ready form (stored in the warehouse ``meta`` table)."""
        return {
            "policy": self.policy,
            "hosts_ok": list(self.hosts_ok),
            "hosts_degraded": list(self.hosts_degraded),
            "hosts_dropped": list(self.hosts_dropped),
            "quarantined": [r.to_dict() for r in self.quarantined],
            "retries": dict(self.retries),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "IngestHealth":
        """Rebuild health from :meth:`to_dict` output."""
        return cls(
            policy=d.get("policy", ErrorPolicy.STRICT.value),
            hosts_ok=list(d.get("hosts_ok", [])),
            hosts_degraded=list(d.get("hosts_degraded", [])),
            hosts_dropped=list(d.get("hosts_dropped", [])),
            quarantined=[
                QuarantinedRecord.from_dict(r)
                for r in d.get("quarantined", [])
            ],
            retries=dict(d.get("retries", {})),
        )

    def write_sidecar(self, directory: str | Path) -> Path:
        """Write the sidecar quarantine report and return its directory.

        Layout::

            <directory>/records.jsonl   one JSON object per quarantined
                                        record, in quarantine order
            <directory>/summary.json    counts + per-host status lists
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "records.jsonl", "w") as fh:
            for rec in self.quarantined:
                fh.write(json.dumps(rec.to_dict()) + "\n")
        payload = self.to_dict()
        payload.pop("quarantined")
        payload["summary"] = self.summary()
        with open(directory / "summary.json", "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return directory

    @classmethod
    def read_sidecar(cls, directory: str | Path) -> "IngestHealth":
        """Load a sidecar report written by :meth:`write_sidecar`."""
        directory = Path(directory)
        with open(directory / "summary.json") as fh:
            payload = json.load(fh)
        records = []
        records_path = directory / "records.jsonl"
        if records_path.exists():
            with open(records_path) as fh:
                for line in fh:
                    if line.strip():
                        records.append(
                            QuarantinedRecord.from_dict(json.loads(line))
                        )
        payload.pop("summary", None)
        payload["quarantined"] = [r.to_dict() for r in records]
        return cls.from_dict(payload)
