"""The process-wide service state and endpoint compute logic.

One :class:`ServiceState` owns the warehouse handle (opened
``threadsafe=True`` so handler threads share the serialized SQLite
connection), resolves the current
:class:`~repro.xdmod.snapshot.WarehouseSnapshot` *once per request*
(pinning the whole request to one frozen view, even mid-refresh), and
layers the service caching stack over the PR 2 memo:

1. **L1** — :class:`~repro.service.cache.TenantReportCache`, keyed by
   ``(endpoint key..., snapshot stamp)``;
2. **single-flight** — concurrent identical misses coalesce into one
   computation (:class:`~repro.service.coalesce.SingleFlight`);
3. **L2** — the snapshot memo itself, shared with CLI consumers.

Everything here is transport-agnostic: methods take plain arguments
and return JSON-able dicts or raise
:class:`~repro.service.protocol.ServiceError`; the HTTP front end in
:mod:`repro.service.server` is a thin routing shim over it.  Report
text is byte-identical to ``repro-report`` output for the same query —
both run the same report classes over the same snapshot machinery.

The live view endpoints (``/api/v1/live/top``, ``/api/v1/live/watch``)
sit outside that stack on purpose: their responses depend on the
calling client's previous poll (per-client
:class:`~repro.live.rates.RateEngine` state) or on blocking for new
data, so they bypass the L1 cache and read the live counter table
directly.  See docs/OBSERVABILITY.md ("Live monitoring").

Federation mode (``federation_root=``) serves a directory of warehouse
shards through the same stack: single-system requests route to the
owning shard (same code path, so responses match single-warehouse
serving exactly), while ``system=all`` scatter-gathers a query across
every shard and merges with the federation kernels — cached in L1 and
coalesced in single-flight under a combined all-shard stamp, so a
cross-cluster dashboard burst costs one scatter.  See
docs/FEDERATION.md.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.live.rates import RateEngine, top_jobs, total_rates
from repro.live.runner import LIVE_COUNTER_METRICS
from repro.service.cache import TenantReportCache
from repro.service.coalesce import SingleFlight
from repro.service.protocol import ServiceError
from repro.telemetry.metrics import get_registry
from repro.xdmod.query import DIMENSIONS, JobQuery
from repro.xdmod.reports import (
    AdminReport,
    DeveloperReport,
    FundingAgencyReport,
    ResourceManagerReport,
    SupportStaffReport,
    UserReport,
)
from repro.xdmod.snapshot import WarehouseSnapshot

__all__ = ["ServiceState", "REPORT_KINDS", "DEFAULT_TENANT"]

#: report realm -> generator class (same vocabulary as ``repro-report``).
REPORT_KINDS = {
    "user": UserReport,
    "developer": DeveloperReport,
    "support": SupportStaffReport,
    "admin": AdminReport,
    "manager": ResourceManagerReport,
    "funding": FundingAgencyReport,
}

#: report realms whose render needs a target argument.
NEEDS_TARGET = {"user": "a username", "developer": "an application tag"}

DEFAULT_TENANT = "public"

#: The ``system`` parameter value that targets the whole federation.
ALL_SYSTEMS = "all"


class ServiceState:
    """Shared state behind every handler thread of one server."""

    def __init__(self, warehouse_path: str | None = None,
                 cache_capacity: int = 256,
                 report_cache: bool = True, max_tenants: int = 64,
                 federation_root: str | None = None):
        if (warehouse_path is None) == (federation_root is None):
            raise ValueError("pass exactly one of warehouse_path / "
                             "federation_root")
        self.federation = None
        self.federation_root = None
        self.warehouse = None
        self.warehouse_path = warehouse_path
        if federation_root is not None:
            from repro.federation import FederatedWarehouse

            self.federation = FederatedWarehouse.open(federation_root,
                                                     threadsafe=True)
            self.federation_root = str(federation_root)
        else:
            self.warehouse = Warehouse(warehouse_path, threadsafe=True)
        self._flight = SingleFlight()
        self._cache = (TenantReportCache(cache_capacity,
                                         max_tenants=max_tenants)
                       if report_cache else None)
        self._refresh_lock = threading.Lock()
        # Snapshot staleness: when the served stamp last changed.
        self._stamp_lock = threading.Lock()
        self._last_stamp: object = None
        self._stamp_time = time.monotonic()
        # Live view state: one RateEngine per (client, system) — the
        # between-query windows belong to that client's poll cadence,
        # so engines are never shared.  LRU-bounded like the tenant
        # cache so an open endpoint can't grow state without bound.
        self._engines_lock = threading.Lock()
        self._engines: OrderedDict[tuple[str, str], RateEngine] = \
            OrderedDict()
        self._max_engines = max(max_tenants, 1)
        self._watchers_lock = threading.Lock()
        self._watchers = 0

    def close(self) -> None:
        """Release the warehouse (or every shard) connection."""
        if self.federation is not None:
            self.federation.close()
        else:
            self.warehouse.close()

    # -- snapshot resolution ----------------------------------------------

    def snapshot(self) -> WarehouseSnapshot:
        """The current frozen view; resolved once per request so every
        sub-query of that request sees one generation."""
        return WarehouseSnapshot.for_warehouse(self.warehouse)

    def _all_systems(self) -> list[str]:
        """Every servable system (across every shard when federated)."""
        if self.federation is not None:
            return self.federation.all_systems()
        return self.warehouse.systems()

    def _resolve(self, system: str) -> tuple[Warehouse, WarehouseSnapshot]:
        """The warehouse + pinned snapshot answering for *system*.

        Single-warehouse mode returns the one warehouse; federation
        mode routes to the owning shard — the same classes either way,
        which is what keeps shard responses identical to single-
        warehouse serving.
        """
        if self.federation is None:
            return self.warehouse, self.snapshot()
        wh = self.federation.shard(self.federation.shard_of(system))
        return wh, WarehouseSnapshot.for_warehouse(wh)

    def refresh(self) -> dict:
        """Adopt external commits: re-read the on-disk generation and
        swap in a delta-refreshed snapshot (``POST /api/v1/refresh``).

        In-flight requests keep the snapshot they already resolved;
        only requests arriving after the swap see the new data.  In
        federation mode every shard re-reads its own generation.
        """
        with self._refresh_lock:
            get_registry().counter("service.refreshes").inc()
            if self.federation is not None:
                before = self.federation.generations()
                after = self.federation.refresh()
                return {
                    "generations": after,
                    "changed": after != before,
                }
            before = self.warehouse.generation
            self.warehouse.reread_generation()
            snap = self.snapshot()
            return {
                "generation": snap.generation,
                "changed": snap.generation != before,
            }

    def snapshot_age_seconds(self) -> float:
        """Seconds since the served snapshot stamp last changed.

        Dashboards alert on this: a live deployment refreshing every
        few minutes should never see it grow past a couple of batch
        periods.  Updating the observation also publishes the
        ``service.snapshot.age_seconds`` gauge, so both ``/metrics``
        scrapes and ``/api/v1/health`` keep it current.
        """
        if self.federation is not None:
            stamp: object = tuple(sorted(
                self.federation.generations().items()))
        else:
            stamp = self.warehouse.data_version
        now = time.monotonic()
        with self._stamp_lock:
            if stamp != self._last_stamp:
                self._last_stamp = stamp
                self._stamp_time = now
            age = now - self._stamp_time
        get_registry().gauge("service.snapshot.age_seconds").set(age)
        return age

    # -- endpoints ----------------------------------------------------------

    def health(self) -> dict:
        """``GET /api/v1/health``: liveness plus warehouse identity."""
        age = round(self.snapshot_age_seconds(), 3)
        if self.federation is not None:
            return {
                "status": "ok",
                "federation": self.federation_root,
                "clusters": self.federation.clusters,
                "systems": self.federation.all_systems(),
                "generations": self.federation.generations(),
                "snapshot_age_seconds": age,
            }
        return {
            "status": "ok",
            "warehouse": self.warehouse_path,
            "systems": self.warehouse.systems(),
            "generation": self.warehouse.generation,
            "snapshot_age_seconds": age,
        }

    def systems(self) -> dict:
        """``GET /api/v1/systems``: per-system configuration facts."""
        out = {}
        for name in self._all_systems():
            _wh, snap = self._resolve(name)
            out[name] = snap.system_info(name)
        return {"systems": out}

    def clusters(self, cluster: str | None = None) -> dict:
        """``GET /api/v1/clusters``: the federation's shard topology
        (optionally filtered to one member cluster)."""
        if self.federation is None:
            raise ServiceError("not_federated",
                               "server is not serving a federation")
        names = self.federation.clusters
        if cluster is not None:
            if cluster not in names:
                raise ServiceError(
                    "unknown_cluster", f"unknown cluster {cluster!r}",
                    {"known": names})
            names = [cluster]
        return {
            "clusters": {
                name: {
                    "systems": self.federation.shards[name].systems(),
                    "generation": self.federation.shards[name].generation,
                    "warehouse": self.federation.shards[name].path,
                }
                for name in names
            }
        }

    def _check_system(self, system: str | None) -> str:
        if not system:
            raise ServiceError("missing_param",
                               "missing required parameter 'system'")
        if system not in self._all_systems():
            raise ServiceError(
                "unknown_system", f"unknown system {system!r}",
                {"known": self._all_systems()})
        return system

    def report(self, kind: str, system: str | None,
               target: str | None = None,
               tenant: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/report/{kind}``: one rendered stakeholder
        report, served through L1 -> single-flight -> snapshot memo."""
        cls = REPORT_KINDS.get(kind)
        if cls is None:
            raise ServiceError(
                "unknown_realm", f"unknown report realm {kind!r}",
                {"known": sorted(REPORT_KINDS)})
        system = self._check_system(system)
        if kind in NEEDS_TARGET:
            if not target:
                raise ServiceError(
                    "missing_target",
                    f"report {kind!r} needs {NEEDS_TARGET[kind]}")
            target_args: tuple[str, ...] = (target,)
        else:
            if target:
                raise ServiceError("unexpected_target",
                                   f"report {kind!r} takes no target")
            target_args = ()

        warehouse, snap = self._resolve(system)
        # Same shape as the snapshot-memo report key (PR 2), extended
        # with the stamp: identical in-flight requests coalesce, and a
        # key can never alias across generations.
        key = ("report", cls.__name__, system, target_args, snap.stamp)
        body = {
            "kind": kind,
            "system": system,
            "target": target,
            "generation": snap.generation,
        }
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, "report": hit, "cached": True}

        def compute() -> str:
            try:
                return cls(warehouse, system,
                           snapshot=snap).render(*target_args)
            except (KeyError, ValueError) as exc:
                # Unknown user/app inside a valid realm: a client
                # error, not an internal one.
                raise ServiceError("bad_request", str(exc)) from exc

        text, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, text)
        return {**body, "report": text, "cached": False,
                "coalesced": coalesced}

    @staticmethod
    def _check_dims(dims: tuple[str, ...], allow_cluster: bool) -> None:
        for d in dims:
            if d in DIMENSIONS or (allow_cluster and d == "cluster"):
                continue
            known = list(DIMENSIONS) + (["cluster"] if allow_cluster
                                        else [])
            raise ServiceError(
                "unknown_dimension", f"unknown dimension {d!r}",
                {"known": known})

    @staticmethod
    def _check_metrics(metrics: tuple[str, ...] | None) -> tuple[str, ...]:
        metrics = SUMMARY_METRICS if metrics is None else metrics
        for m in metrics:
            if m not in SUMMARY_METRICS:
                raise ServiceError(
                    "unknown_metric", f"unknown metric {m!r}",
                    {"known": list(SUMMARY_METRICS)})
        return metrics

    def group_by(self, system: str | None, dimension: str | None,
                 metrics: tuple[str, ...] | None = None,
                 tenant: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/query/group_by``: weighted aggregation by one
        or more dimensions (comma-separated).

        In federation mode ``system=all`` scatter-gathers across every
        shard; the dimension list may then include the virtual
        ``cluster`` dimension.
        """
        if self.federation is not None and system == ALL_SYSTEMS:
            return self._federated_group_by(dimension, metrics, tenant)
        system = self._check_system(system)
        if not dimension:
            raise ServiceError("missing_param",
                               "missing required parameter 'dimension'")
        dims = tuple(d for d in dimension.split(",") if d)
        self._check_dims(dims, allow_cluster=False)
        metrics = self._check_metrics(metrics)

        warehouse, snap = self._resolve(system)
        key = ("service.group_by", system, dims, metrics, snap.stamp)
        body = {"system": system, "dimension": list(dims),
                "metrics": list(metrics), "generation": snap.generation}
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, "groups": hit, "cached": True}

        def compute() -> list[dict]:
            query = JobQuery(warehouse, system, snapshot=snap)
            return [
                {
                    "key": g.key,
                    "keys": list(g.keys),
                    "job_count": g.job_count,
                    "node_hours": g.node_hours,
                    "weighted_means": g.weighted_means,
                }
                for g in query.group_by(
                    dims if len(dims) > 1 else dims[0], metrics=metrics)
            ]

        groups, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, groups)
        return {**body, "groups": groups, "cached": False,
                "coalesced": coalesced}

    def _federated_group_by(self, dimension: str | None,
                            metrics: tuple[str, ...] | None,
                            tenant: str) -> dict:
        """The ``system=all`` scatter-gather behind :meth:`group_by`."""
        if not dimension:
            raise ServiceError("missing_param",
                               "missing required parameter 'dimension'")
        dims = tuple(d for d in dimension.split(",") if d)
        self._check_dims(dims, allow_cluster=True)
        metrics = self._check_metrics(metrics)

        snaps = self.federation.snapshots()
        stamp = self.federation.stamp(snaps)
        key = ("federation.group_by", dims, metrics, stamp)
        body = {"system": ALL_SYSTEMS, "dimension": list(dims),
                "metrics": list(metrics),
                "clusters": self.federation.clusters,
                "generations": self.federation.generations()}
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, "groups": hit, "cached": True}

        def compute() -> list[dict]:
            return [
                {
                    "key": g.key,
                    "keys": list(g.keys),
                    "job_count": g.job_count,
                    "node_hours": g.node_hours,
                    "weighted_means": g.weighted_means,
                }
                for g in self.federation.group_by(
                    dims if len(dims) > 1 else dims[0],
                    metrics=metrics, snapshots=snaps)
            ]

        groups, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, groups)
        return {**body, "groups": groups, "cached": False,
                "coalesced": coalesced}

    def federation_overview(self, tenant: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/federation/overview``: the cross-cluster
        rollup (per-cluster facts, merged totals, rendered table),
        served through the same L1/single-flight stack."""
        if self.federation is None:
            raise ServiceError("not_federated",
                               "server is not serving a federation")
        snaps = self.federation.snapshots()
        stamp = self.federation.stamp(snaps)
        key = ("federation.overview", stamp)
        body = {"clusters": self.federation.clusters,
                "generations": self.federation.generations()}
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, **hit, "cached": True}

        def compute() -> dict:
            overview = self.federation.overview(snapshots=snaps)
            return {**overview, "report": self.federation.render_overview()}

        payload, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, payload)
        return {**body, **payload, "cached": False, "coalesced": coalesced}

    def timeseries(self, system: str | None, series: str | None,
                   tenant: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/timeseries/{series}``: one stored system
        series as parallel time/value arrays.

        In federation mode ``system=all`` returns the series merged
        across every cluster (sums for extensive series, active-node-
        weighted means for intensive ones).
        """
        if self.federation is not None and system == ALL_SYSTEMS:
            return self._federated_timeseries(series, tenant)
        system = self._check_system(system)
        if not series:
            raise ServiceError("missing_param", "missing series name")
        warehouse, snap = self._resolve(system)
        known = warehouse.series_metrics(system)
        if series not in known:
            raise ServiceError(
                "unknown_series",
                f"no series {series!r} for system {system!r}",
                {"known": known})

        key = ("service.timeseries", system, series, snap.stamp)
        body = {"system": system, "series": series,
                "generation": snap.generation}
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, **hit, "cached": True}

        def compute() -> dict:
            t, v = snap.series(system, series)
            return {"times": t.tolist(), "values": v.tolist(),
                    "mean": float(v.mean()) if v.size else 0.0}

        payload, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, payload)
        return {**body, **payload, "cached": False, "coalesced": coalesced}

    # -- live view ----------------------------------------------------------

    def _live_warehouse(self, system: str) -> Warehouse:
        if self.federation is None:
            return self.warehouse
        return self.federation.shard(self.federation.shard_of(system))

    def _engine_for(self, client: str, system: str) -> RateEngine:
        """The *client*'s rate engine for *system* (LRU-bounded)."""
        key = (client, system)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is None:
                engine = self._engines[key] = RateEngine()
                while len(self._engines) > self._max_engines:
                    self._engines.popitem(last=False)
            else:
                self._engines.move_to_end(key)
            return engine

    def live_top(self, system: str | None, n: int = 5,
                 order_by: str = "flops_gf", user: str | None = None,
                 app: str | None = None,
                 client: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/live/top``: top-N jobs by between-query rate.

        Deliberately **bypasses the L1 cache**: the response is a
        function of the calling client's previous poll (its rate
        engine state), so a cached body would hand one client another
        client's window — and the underlying counter read is a single
        indexed SQL scan, far cheaper than a report render.  The
        ``client`` parameter (defaulting to the tenant) names the
        engine; a client polling at its own cadence always gets rates
        over *its* windows.  The first poll only baselines
        (``baseline: true``, no rates yet), exactly like glljobstat's
        first interval.
        """
        system = self._check_system(system)
        if order_by not in LIVE_COUNTER_METRICS:
            raise ServiceError(
                "unknown_metric", f"unknown live metric {order_by!r}",
                {"known": list(LIVE_COUNTER_METRICS)})
        if not 1 <= n <= 1000:
            raise ServiceError("bad_request",
                               f"n must be in 1..1000, got {n}")
        warehouse = self._live_warehouse(system)
        samples = warehouse.live_counters(system)
        engine = self._engine_for(client, system)
        # Engines serialize their own observe: two in-flight polls
        # from one client must not interleave window state.
        with self._engines_lock:
            rates = engine.observe(samples)
        top = top_jobs(rates, n=n, order_by=order_by, user=user,
                       app=app)
        get_registry().counter("live.top_requests").inc()
        return {
            "system": system,
            "order_by": order_by,
            "n": n,
            "t": max((s["t"] for s in samples), default=0.0),
            "jobs_observed": len(samples),
            "baseline": bool(samples) and not rates,
            "total": total_rates(rates),
            "jobs": [r.to_dict() for r in top],
        }

    def live_watch(self, system: str | None, since: float | None = None,
                   timeout: float = 15.0) -> dict:
        """``GET /api/v1/live/watch``: long-poll for new live samples.

        Blocks (up to *timeout* seconds, clamped to 30) until the
        system's live counter high-water time advances past *since*,
        re-reading the on-disk generation each poll so external
        micro-batch commits are seen.  With no *since* it returns the
        current high-water immediately — the bootstrap call.  Never
        cached (it is a synchronization primitive, not a query); the
        ``live.watchers`` gauge counts blocked watchers.
        """
        system = self._check_system(system)
        timeout = min(max(float(timeout), 0.0), 30.0)
        warehouse = self._live_warehouse(system)
        registry = get_registry()
        registry.counter("live.watch_requests").inc()
        gauge = registry.gauge("live.watchers")

        def high_water() -> float:
            warehouse.reread_generation()
            return warehouse.live_high_water(system)

        hw = high_water()
        if since is None or hw > since:
            return {"system": system, "changed": since is not None,
                    "t": hw, "generation": warehouse.generation}
        with self._watchers_lock:
            self._watchers += 1
            gauge.set(float(self._watchers))
        try:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                time.sleep(min(0.05, max(deadline - time.monotonic(),
                                         0.0)))
                hw = high_water()
                if hw > since:
                    return {"system": system, "changed": True, "t": hw,
                            "generation": warehouse.generation}
            return {"system": system, "changed": False, "t": hw,
                    "generation": warehouse.generation}
        finally:
            with self._watchers_lock:
                self._watchers -= 1
                gauge.set(float(self._watchers))

    def _federated_timeseries(self, series: str | None,
                              tenant: str) -> dict:
        """The ``system=all`` merged-series behind :meth:`timeseries`."""
        if not series:
            raise ServiceError("missing_param", "missing series name")
        known = self.federation.series_metrics()
        if series not in known:
            raise ServiceError(
                "unknown_series",
                f"no series {series!r} in any federation shard",
                {"known": known})

        snaps = self.federation.snapshots()
        stamp = self.federation.stamp(snaps)
        key = ("federation.timeseries", series, stamp)
        body = {"system": ALL_SYSTEMS, "series": series,
                "clusters": self.federation.clusters,
                "generations": self.federation.generations()}
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, **hit, "cached": True}

        def compute() -> dict:
            t, v = self.federation.timeseries(series, snapshots=snaps)
            return {"times": t.tolist(), "values": v.tolist(),
                    "mean": float(v.mean()) if v.size else 0.0}

        payload, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, payload)
        return {**body, **payload, "cached": False, "coalesced": coalesced}
