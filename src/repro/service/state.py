"""The process-wide service state and endpoint compute logic.

One :class:`ServiceState` owns the warehouse handle (opened
``threadsafe=True`` so handler threads share the serialized SQLite
connection), resolves the current
:class:`~repro.xdmod.snapshot.WarehouseSnapshot` *once per request*
(pinning the whole request to one frozen view, even mid-refresh), and
layers the service caching stack over the PR 2 memo:

1. **L1** — :class:`~repro.service.cache.TenantReportCache`, keyed by
   ``(endpoint key..., snapshot stamp)``;
2. **single-flight** — concurrent identical misses coalesce into one
   computation (:class:`~repro.service.coalesce.SingleFlight`);
3. **L2** — the snapshot memo itself, shared with CLI consumers.

Everything here is transport-agnostic: methods take plain arguments
and return JSON-able dicts or raise
:class:`~repro.service.protocol.ServiceError`; the HTTP front end in
:mod:`repro.service.server` is a thin routing shim over it.  Report
text is byte-identical to ``repro-report`` output for the same query —
both run the same report classes over the same snapshot machinery.
"""

from __future__ import annotations

import threading

from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.service.cache import TenantReportCache
from repro.service.coalesce import SingleFlight
from repro.service.protocol import ServiceError
from repro.telemetry.metrics import get_registry
from repro.xdmod.query import DIMENSIONS, JobQuery
from repro.xdmod.reports import (
    AdminReport,
    DeveloperReport,
    FundingAgencyReport,
    ResourceManagerReport,
    SupportStaffReport,
    UserReport,
)
from repro.xdmod.snapshot import WarehouseSnapshot

__all__ = ["ServiceState", "REPORT_KINDS", "DEFAULT_TENANT"]

#: report realm -> generator class (same vocabulary as ``repro-report``).
REPORT_KINDS = {
    "user": UserReport,
    "developer": DeveloperReport,
    "support": SupportStaffReport,
    "admin": AdminReport,
    "manager": ResourceManagerReport,
    "funding": FundingAgencyReport,
}

#: report realms whose render needs a target argument.
NEEDS_TARGET = {"user": "a username", "developer": "an application tag"}

DEFAULT_TENANT = "public"


class ServiceState:
    """Shared state behind every handler thread of one server."""

    def __init__(self, warehouse_path: str, cache_capacity: int = 256,
                 report_cache: bool = True, max_tenants: int = 64):
        self.warehouse = Warehouse(warehouse_path, threadsafe=True)
        self.warehouse_path = warehouse_path
        self._flight = SingleFlight()
        self._cache = (TenantReportCache(cache_capacity,
                                         max_tenants=max_tenants)
                       if report_cache else None)
        self._refresh_lock = threading.Lock()

    def close(self) -> None:
        """Release the warehouse connection."""
        self.warehouse.close()

    # -- snapshot resolution ----------------------------------------------

    def snapshot(self) -> WarehouseSnapshot:
        """The current frozen view; resolved once per request so every
        sub-query of that request sees one generation."""
        return WarehouseSnapshot.for_warehouse(self.warehouse)

    def refresh(self) -> dict:
        """Adopt external commits: re-read the on-disk generation and
        swap in a delta-refreshed snapshot (``POST /api/v1/refresh``).

        In-flight requests keep the snapshot they already resolved;
        only requests arriving after the swap see the new data.
        """
        with self._refresh_lock:
            before = self.warehouse.generation
            self.warehouse.reread_generation()
            snap = self.snapshot()
            get_registry().counter("service.refreshes").inc()
            return {
                "generation": snap.generation,
                "changed": snap.generation != before,
            }

    # -- endpoints ----------------------------------------------------------

    def health(self) -> dict:
        """``GET /api/v1/health``: liveness plus warehouse identity."""
        return {
            "status": "ok",
            "warehouse": self.warehouse_path,
            "systems": self.warehouse.systems(),
            "generation": self.warehouse.generation,
        }

    def systems(self) -> dict:
        """``GET /api/v1/systems``: per-system configuration facts."""
        snap = self.snapshot()
        return {
            "systems": {
                name: snap.system_info(name)
                for name in self.warehouse.systems()
            }
        }

    def _check_system(self, system: str | None) -> str:
        if not system:
            raise ServiceError("missing_param",
                               "missing required parameter 'system'")
        if system not in self.warehouse.systems():
            raise ServiceError(
                "unknown_system", f"unknown system {system!r}",
                {"known": self.warehouse.systems()})
        return system

    def report(self, kind: str, system: str | None,
               target: str | None = None,
               tenant: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/report/{kind}``: one rendered stakeholder
        report, served through L1 -> single-flight -> snapshot memo."""
        cls = REPORT_KINDS.get(kind)
        if cls is None:
            raise ServiceError(
                "unknown_realm", f"unknown report realm {kind!r}",
                {"known": sorted(REPORT_KINDS)})
        system = self._check_system(system)
        if kind in NEEDS_TARGET:
            if not target:
                raise ServiceError(
                    "missing_target",
                    f"report {kind!r} needs {NEEDS_TARGET[kind]}")
            target_args: tuple[str, ...] = (target,)
        else:
            if target:
                raise ServiceError("unexpected_target",
                                   f"report {kind!r} takes no target")
            target_args = ()

        snap = self.snapshot()
        # Same shape as the snapshot-memo report key (PR 2), extended
        # with the stamp: identical in-flight requests coalesce, and a
        # key can never alias across generations.
        key = ("report", cls.__name__, system, target_args, snap.stamp)
        body = {
            "kind": kind,
            "system": system,
            "target": target,
            "generation": snap.generation,
        }
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, "report": hit, "cached": True}

        def compute() -> str:
            try:
                return cls(self.warehouse, system,
                           snapshot=snap).render(*target_args)
            except (KeyError, ValueError) as exc:
                # Unknown user/app inside a valid realm: a client
                # error, not an internal one.
                raise ServiceError("bad_request", str(exc)) from exc

        text, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, text)
        return {**body, "report": text, "cached": False,
                "coalesced": coalesced}

    def group_by(self, system: str | None, dimension: str | None,
                 metrics: tuple[str, ...] | None = None,
                 tenant: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/query/group_by``: weighted aggregation by one
        or more dimensions (comma-separated)."""
        system = self._check_system(system)
        if not dimension:
            raise ServiceError("missing_param",
                               "missing required parameter 'dimension'")
        dims = tuple(d for d in dimension.split(",") if d)
        for d in dims:
            if d not in DIMENSIONS:
                raise ServiceError(
                    "unknown_dimension", f"unknown dimension {d!r}",
                    {"known": list(DIMENSIONS)})
        metrics = SUMMARY_METRICS if metrics is None else metrics
        for m in metrics:
            if m not in SUMMARY_METRICS:
                raise ServiceError(
                    "unknown_metric", f"unknown metric {m!r}",
                    {"known": list(SUMMARY_METRICS)})

        snap = self.snapshot()
        key = ("service.group_by", system, dims, metrics, snap.stamp)
        body = {"system": system, "dimension": list(dims),
                "metrics": list(metrics), "generation": snap.generation}
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, "groups": hit, "cached": True}

        def compute() -> list[dict]:
            query = JobQuery(self.warehouse, system, snapshot=snap)
            return [
                {
                    "key": g.key,
                    "keys": list(g.keys),
                    "job_count": g.job_count,
                    "node_hours": g.node_hours,
                    "weighted_means": g.weighted_means,
                }
                for g in query.group_by(
                    dims if len(dims) > 1 else dims[0], metrics=metrics)
            ]

        groups, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, groups)
        return {**body, "groups": groups, "cached": False,
                "coalesced": coalesced}

    def timeseries(self, system: str | None, series: str | None,
                   tenant: str = DEFAULT_TENANT) -> dict:
        """``GET /api/v1/timeseries/{series}``: one stored system
        series as parallel time/value arrays."""
        system = self._check_system(system)
        if not series:
            raise ServiceError("missing_param", "missing series name")
        known = self.warehouse.series_metrics(system)
        if series not in known:
            raise ServiceError(
                "unknown_series",
                f"no series {series!r} for system {system!r}",
                {"known": known})

        snap = self.snapshot()
        key = ("service.timeseries", system, series, snap.stamp)
        body = {"system": system, "series": series,
                "generation": snap.generation}
        if self._cache is not None:
            hit = self._cache.get(tenant, key)
            if hit is not None:
                return {**body, **hit, "cached": True}

        def compute() -> dict:
            t, v = snap.series(system, series)
            return {"times": t.tolist(), "values": v.tolist(),
                    "mean": float(v.mean()) if v.size else 0.0}

        payload, coalesced = self._flight.do(key, compute)
        if self._cache is not None:
            self._cache.put(tenant, key, payload)
        return {**body, **payload, "cached": False, "coalesced": coalesced}
