"""Single-flight request coalescing.

When N handler threads ask for the same uncached report at the same
moment, computing it N times wastes N-1 computations *and* serializes
them on the snapshot memo lock's ``setdefault``.  A
:class:`SingleFlight` keyed on the PR 2 cache key makes the first
caller the *leader* (it computes), and every concurrent duplicate a
*follower* (it waits on the leader's event and receives the same
result object).  The ``service.coalesced`` counter increments once per
follower — *before* the wait — so tests and the latency bench can
assert compute-once behaviour deterministically from telemetry alone.

Failure fan-out: a leader's exception is delivered to every follower
(each raises the same exception object).  The in-flight entry is
removed before the event fires, so a retry after a failure computes
afresh instead of observing a stale error.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

from repro.telemetry.metrics import get_registry

__all__ = ["SingleFlight"]


class _Call:
    """One in-flight computation: the leader's result or error, plus
    the event followers wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Deduplicates concurrent calls with the same key.

    ``do(key, compute)`` returns ``(value, coalesced)`` where
    *coalesced* is True iff this caller was a follower that received a
    leader's result instead of computing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Call] = {}

    def do(self, key: Hashable,
           compute: Callable[[], Any]) -> tuple[Any, bool]:
        """Run *compute* once per concurrent set of identical *key*\\ s.

        The leader runs *compute* outside the flight lock (distinct
        keys never serialize on each other); followers count
        themselves in ``service.coalesced`` and then block until the
        leader publishes.
        """
        with self._lock:
            call = self._inflight.get(key)
            if call is None:
                call = _Call()
                self._inflight[key] = call
                leader = True
            else:
                leader = False
                # Counted before the wait: the moment this increments,
                # the request is provably riding an in-flight compute.
                get_registry().counter("service.coalesced").inc()
        if leader:
            try:
                call.value = compute()
            except BaseException as exc:
                call.error = exc
                raise
            finally:
                # Remove before waking followers: a brand-new request
                # arriving after the event fires must start a fresh
                # flight, never adopt a completed one.
                with self._lock:
                    self._inflight.pop(key, None)
                call.event.set()
            return call.value, False
        call.event.wait()
        if call.error is not None:
            raise call.error
        return call.value, True

    def in_flight(self) -> int:
        """Number of keys currently being computed (monitoring hook)."""
        with self._lock:
            return len(self._inflight)
