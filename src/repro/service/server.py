"""The HTTP front end: stdlib ``ThreadingHTTPServer`` + URL routing.

No framework, no new dependencies: a
:class:`http.server.BaseHTTPRequestHandler` subclass parses the URL,
dispatches into :class:`~repro.service.state.ServiceState`, and
serializes the returned dict as JSON.  HTTP/1.1 keep-alive is on
(``Content-Length`` is always set), so a dashboard session reuses one
TCP connection across its whole query burst.

Routes (all JSON unless noted)::

    GET  /api/v1/health              liveness + warehouse identity
    GET  /api/v1/systems             per-system configuration
    GET  /api/v1/clusters            federation shard topology
    GET  /api/v1/report/{kind}       ?system=&target=   rendered report
    GET  /api/v1/query/group_by      ?system=&dimension=&metrics=a,b
    GET  /api/v1/timeseries/{name}   ?system=           stored series
    GET  /api/v1/federation/overview cross-cluster rollup
    GET  /api/v1/live/top            ?system=&n=&order_by=&user=&app=
    GET  /api/v1/live/watch          ?system=&since=&timeout=  long-poll
    POST /api/v1/refresh             adopt external ingest commits
    GET  /metrics                    Prometheus text 0.0.4

The live endpoints bypass the per-tenant L1 cache (their responses are
a function of the calling client's previous poll — see
:meth:`~repro.service.state.ServiceState.live_top`); ``/metrics``
refreshes the ``service.snapshot.age_seconds`` staleness gauge on
every scrape.

In federation mode (``repro-serve --federation DIR``) the query and
timeseries endpoints additionally accept ``system=all`` for the
scatter-gather cross-cluster path; ``group_by`` then understands the
virtual ``cluster`` dimension.

Tenancy: the ``X-Tenant`` header (or ``tenant`` query parameter) keys
the per-tenant L1 cache; unset means the shared ``public`` tenant.

Telemetry per request: ``service.requests`` plus
``service.requests.{endpoint}`` counters, the
``service.latency.seconds`` histogram, ``service.errors`` on any
non-2xx.  Scrape them at ``/metrics``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.service.protocol import (
    ServiceError,
    csv_tuple,
    error_body,
    one_param,
    valid_tenant,
)
from repro.service.state import DEFAULT_TENANT, ServiceState
from repro.telemetry.export import to_prometheus
from repro.telemetry.metrics import get_registry

__all__ = ["ReproServer", "RequestHandler", "make_server",
           "SERVICE_LATENCY_BUCKETS"]

#: Latency buckets tuned for an in-memory dashboard service: the p99
#: acceptance gate is 10 ms, so resolution concentrates below it.
SERVICE_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.1, 0.5, 2.5,
)


class ReproServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServiceState`."""

    daemon_threads = True  # handler threads die with the process
    #: A dashboard burst opens its sessions all at once; the
    #: socketserver default backlog of 5 would drop the SYN flood and
    #: cost every dropped client a full retransmission timeout.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], state: ServiceState):
        super().__init__(address, RequestHandler)
        self.state = state
        # In-flight accounting for a clean shutdown: handler threads
        # are daemons (an idle keep-alive connection parked on a
        # blocking read must not pin the process), so ``server_close``
        # never joins them — :meth:`drain` is what keeps the warehouse
        # connection open until every *dispatched* request finished.
        self._inflight = 0
        self._draining = False
        self._idle = threading.Condition()

    def request_started(self) -> bool:
        """Count a request in; ``False`` once draining (the handler
        answers 503 without touching the service state)."""
        with self._idle:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def request_finished(self) -> None:
        """Count a request out, waking :meth:`drain` at zero."""
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    def drain(self, timeout: float = 5.0) -> bool:
        """Stop admitting requests and wait (up to *timeout* seconds)
        for the in-flight ones to finish.

        Call after ``serve_forever`` returns and before closing the
        shared warehouse connection; requests arriving on still-open
        keep-alive connections afterwards get a structured 503 instead
        of a ``sqlite3.ProgrammingError``-driven 500.  Returns whether
        the server went idle within the timeout.
        """
        with self._idle:
            self._draining = True
            return self._idle.wait_for(
                lambda: self._inflight <= 0, timeout)


class RequestHandler(BaseHTTPRequestHandler):
    """Routes one request into the service state; always answers JSON
    (or Prometheus text for ``/metrics``), never an HTML traceback."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    #: Responses are two small writes (header block, body); Nagle would
    #: hold the second behind the peer's delayed ACK — a flat ~40 ms
    #: tax on every warm request.
    disable_nagle_algorithm = True
    #: Toggled by the CLI; the default stays quiet so handler threads
    #: never contend on stderr during benchmarks.
    log_requests = False

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        """Per-request stderr lines, off unless :attr:`log_requests`."""
        if self.log_requests:
            super().log_message(format, *args)

    def _send(self, status: int, payload: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, body: dict) -> None:
        self._send(status, (json.dumps(body) + "\n").encode())

    def _tenant(self, params: dict[str, list[str]]) -> str:
        header = self.headers.get("X-Tenant")
        if header:
            return valid_tenant(header)
        name = one_param(params, "tenant", DEFAULT_TENANT)
        return name if name == DEFAULT_TENANT else valid_tenant(name)

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch a GET request."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch a POST request."""
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        if not self.server.request_started():
            # Shutdown drain in progress: the service state is about to
            # close, so answer without touching it.
            try:
                self._send_json(503, error_body(
                    "shutting_down", "server is shutting down"))
            except OSError:
                pass
            self.close_connection = True
            return
        try:
            self._handle_counted(method)
        finally:
            self.server.request_finished()

    def _handle_counted(self, method: str) -> None:
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        endpoint = self._endpoint_name(parts)
        registry = get_registry()
        registry.counter("service.requests").inc()
        registry.counter(f"service.requests.{endpoint}").inc()
        start = time.perf_counter()
        status = 500
        try:
            status, body, content_type = self._route(
                method, parts, parse_qs(url.query))
            self._send(status, body, content_type)
        except ServiceError as exc:
            status = exc.status
            self._send_json(status, error_body(exc.code, exc.message,
                                               exc.detail))
        except BrokenPipeError:
            status = 0  # client went away; nothing to answer
        except Exception as exc:  # never an HTML traceback
            status = 500
            self._send_json(status, error_body(
                "internal", f"{type(exc).__name__}: {exc}"))
        finally:
            registry.histogram("service.latency.seconds",
                               SERVICE_LATENCY_BUCKETS).observe(
                time.perf_counter() - start)
            if status >= 400:
                registry.counter("service.errors").inc()

    @staticmethod
    def _endpoint_name(parts: list[str]) -> str:
        """The telemetry label for a path: the route family, never the
        raw path (no label-cardinality explosion from bad URLs)."""
        if parts == ["metrics"]:
            return "metrics"
        if len(parts) >= 3 and parts[:2] == ["api", "v1"]:
            name = parts[2]
            if name in ("health", "systems", "clusters", "report",
                        "query", "timeseries", "refresh", "federation",
                        "live"):
                return name
        return "unknown"

    def _route(self, method: str, parts: list[str],
               params: dict[str, list[str]]) -> tuple[int, bytes, str]:
        state: ServiceState = self.server.state
        if parts == ["metrics"]:
            if method != "GET":
                raise ServiceError("method_not_allowed",
                                   "/metrics is GET-only")
            state.snapshot_age_seconds()  # freshen the staleness gauge
            text = to_prometheus(get_registry().snapshot())
            return 200, text.encode(), "text/plain; version=0.0.4"

        if len(parts) < 3 or parts[:2] != ["api", "v1"]:
            raise ServiceError("unknown_endpoint",
                               f"no such endpoint {self.path!r}")
        head, tail = parts[2], parts[3:]

        if head == "refresh" and not tail:
            if method != "POST":
                raise ServiceError("method_not_allowed",
                                   "refresh is POST-only")
            return self._json_ok(state.refresh())

        if method != "GET":
            raise ServiceError("method_not_allowed",
                               f"{head} is GET-only")
        if head == "health" and not tail:
            return self._json_ok(state.health())
        if head == "systems" and not tail:
            return self._json_ok(state.systems())
        if head == "clusters" and not tail:
            return self._json_ok(state.clusters(
                cluster=one_param(params, "cluster")))
        if head == "federation" and tail == ["overview"]:
            return self._json_ok(state.federation_overview(
                tenant=self._tenant(params)))
        if head == "report" and len(tail) == 1:
            return self._json_ok(state.report(
                kind=tail[0],
                system=one_param(params, "system"),
                target=one_param(params, "target"),
                tenant=self._tenant(params)))
        if head == "query" and tail == ["group_by"]:
            return self._json_ok(state.group_by(
                system=one_param(params, "system"),
                dimension=one_param(params, "dimension"),
                metrics=csv_tuple(one_param(params, "metrics")),
                tenant=self._tenant(params)))
        if head == "timeseries" and len(tail) == 1:
            return self._json_ok(state.timeseries(
                system=one_param(params, "system"),
                series=tail[0],
                tenant=self._tenant(params)))
        if head == "live" and tail == ["top"]:
            return self._json_ok(state.live_top(
                system=one_param(params, "system"),
                n=self._int_param(params, "n", 5),
                order_by=one_param(params, "metric", "flops_gf"),
                user=one_param(params, "user"),
                app=one_param(params, "app"),
                client=self._tenant(params)))
        if head == "live" and tail == ["watch"]:
            since = one_param(params, "since")
            return self._json_ok(state.live_watch(
                system=one_param(params, "system"),
                since=self._float_param(params, "since")
                if since is not None else None,
                timeout=self._float_param(params, "timeout", 15.0)))
        raise ServiceError("unknown_endpoint",
                           f"no such endpoint {self.path!r}")

    @staticmethod
    def _int_param(params: dict[str, list[str]], name: str,
                   default: int) -> int:
        raw = one_param(params, name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise ServiceError(
                "bad_request",
                f"{name} must be an integer, got {raw!r}") from None

    @staticmethod
    def _float_param(params: dict[str, list[str]], name: str,
                     default: float = 0.0) -> float:
        raw = one_param(params, name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise ServiceError(
                "bad_request",
                f"{name} must be a number, got {raw!r}") from None

    @staticmethod
    def _json_ok(body: dict) -> tuple[int, bytes, str]:
        return (200, (json.dumps(body) + "\n").encode(),
                "application/json")


def make_server(state: ServiceState, host: str = "127.0.0.1",
                port: int = 0) -> ReproServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port
    (tests and the latency bench bind this way)."""
    return ReproServer((host, port), state)
