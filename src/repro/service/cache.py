"""Per-tenant LRU report cache (the service's L1).

The snapshot memo (PR 2) already caches every rendered report for the
*process*; this layer adds the service semantics on top:

* **tenancy** — each tenant (the ``X-Tenant`` header or ``tenant``
  query parameter, default ``"public"``) gets an isolated LRU, so one
  dashboard's burst cannot evict another's working set and per-tenant
  hit rates stay observable;
* **bounded memory** — two limits, both LRU: at most *capacity*
  entries per tenant, and at most *max_tenants* tenants total.  The
  tenant name is client-controlled, so without the second bound a
  misbehaving client minting fresh tenant names could grow the map
  (each slot holding up to *capacity* full report bodies) without
  limit in a long-lived server.  When a new tenant would exceed the
  bound, the least-recently-*used* tenant's whole LRU is dropped
  (``service.cache.tenant_evictions`` counts these);
* **staleness by construction** — every key embeds the snapshot stamp
  it was computed against, so after a refresh the old entries simply
  stop being asked for and age out.  A stale response can never be
  served.

Counters: ``service.cache.hit`` / ``service.cache.miss`` (process
totals) plus ``service.cache.tenant_evictions`` — exported via
``/metrics`` and the run manifest.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.telemetry.metrics import get_registry

__all__ = ["TenantReportCache"]


class TenantReportCache:
    """A thread-safe map of tenant -> LRU of rendered responses,
    itself LRU-bounded on the number of tenants."""

    def __init__(self, capacity: int = 256, max_tenants: int = 64):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if max_tenants < 1:
            raise ValueError("max tenants must be >= 1")
        self.capacity = capacity
        self.max_tenants = max_tenants
        self._lock = threading.Lock()
        self._tenants: OrderedDict[str, OrderedDict[Hashable, Any]] = (
            OrderedDict()
        )

    def get(self, tenant: str, key: Hashable) -> Any | None:
        """The cached value, refreshed to most-recently-used, or
        ``None``.  Counts ``service.cache.hit`` / ``.miss``."""
        with self._lock:
            lru = self._tenants.get(tenant)
            if lru is not None and key in lru:
                self._tenants.move_to_end(tenant)
                lru.move_to_end(key)
                value = lru[key]
            else:
                value = None
        if value is None:
            get_registry().counter("service.cache.miss").inc()
        else:
            get_registry().counter("service.cache.hit").inc()
        return value

    def put(self, tenant: str, key: Hashable, value: Any) -> None:
        """Store *value*, evicting the tenant's least-recent entry at
        capacity and the least-recently-used whole tenant when the
        tenant bound is exceeded."""
        evicted_tenants = 0
        with self._lock:
            lru = self._tenants.setdefault(tenant, OrderedDict())
            self._tenants.move_to_end(tenant)
            lru[key] = value
            lru.move_to_end(key)
            while len(lru) > self.capacity:
                lru.popitem(last=False)
            while len(self._tenants) > self.max_tenants:
                self._tenants.popitem(last=False)
                evicted_tenants += 1
        if evicted_tenants:
            get_registry().counter(
                "service.cache.tenant_evictions").inc(evicted_tenants)

    def stats(self) -> dict[str, int]:
        """Entry counts per tenant plus the total (monitoring hook)."""
        with self._lock:
            per = {t: len(lru) for t, lru in self._tenants.items()}
        per["total"] = sum(per.values())
        return per

    def clear(self) -> None:
        """Drop every entry (tests and explicit refresh use this)."""
        with self._lock:
            self._tenants.clear()
