"""Service request/response envelope: structured errors and validation.

Every response body is JSON.  Failures never surface as HTML tracebacks
or bare 500s: they serialize as::

    {"error": {"code": "unknown_metric",
               "message": "unknown metric 'flops2'",
               "detail": {...}}}

with a meaningful HTTP status, so dashboard clients can branch on the
stable ``code`` instead of scraping messages.  The codes are a closed
set (:data:`ERROR_STATUS`); anything unexpected maps to ``internal``
with the exception's message and no traceback.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ServiceError", "ERROR_STATUS", "error_body", "csv_tuple",
           "one_param", "valid_tenant", "MAX_TENANT_LEN"]

#: Longest accepted tenant name.  The tenant is client-controlled and
#: keys a per-tenant cache slot, so it is validated like any other
#: parameter instead of being stored verbatim.
MAX_TENANT_LEN = 128

#: error code -> HTTP status.  The closed vocabulary of failure modes a
#: client can observe; ``internal`` is the only 5xx.
ERROR_STATUS: dict[str, int] = {
    "bad_request": 400,
    "missing_param": 400,
    "missing_target": 400,
    "unexpected_target": 400,
    "unknown_realm": 404,
    "unknown_system": 404,
    "unknown_cluster": 404,
    "not_federated": 400,
    "unknown_metric": 404,
    "unknown_dimension": 404,
    "unknown_series": 404,
    "unknown_endpoint": 404,
    "method_not_allowed": 405,
    "internal": 500,
    "shutting_down": 503,
}


class ServiceError(Exception):
    """A request failure with a stable machine-readable code.

    Raised anywhere in the endpoint compute path; the HTTP front end
    serializes it with :func:`error_body` and the status from
    :data:`ERROR_STATUS`.
    """

    def __init__(self, code: str, message: str,
                 detail: dict[str, Any] | None = None):
        if code not in ERROR_STATUS:
            raise ValueError(f"unregistered error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.detail = detail or {}

    @property
    def status(self) -> int:
        """The HTTP status this error serializes with."""
        return ERROR_STATUS[self.code]


def error_body(code: str, message: str,
               detail: dict[str, Any] | None = None) -> dict:
    """The JSON body shape shared by every error response."""
    body: dict[str, Any] = {"error": {"code": code, "message": message}}
    if detail:
        body["error"]["detail"] = detail
    return body


def one_param(params: dict[str, list[str]], name: str,
              default: str | None = None, required: bool = False) -> str | None:
    """The single value of query parameter *name*.

    Repeated parameters are a client error (the protocol has no
    list-valued parameters — lists travel comma-separated); a missing
    required parameter raises ``missing_param``.
    """
    values = params.get(name, [])
    if len(values) > 1:
        raise ServiceError("bad_request",
                           f"parameter {name!r} given {len(values)} times")
    if not values:
        if required:
            raise ServiceError("missing_param",
                               f"missing required parameter {name!r}")
        return default
    return values[0]


def valid_tenant(name: str) -> str:
    """Validate a client-supplied tenant name.

    Rejects empty names, names longer than :data:`MAX_TENANT_LEN`, and
    names containing control characters — each a ``bad_request``.
    Returns the name unchanged when valid.
    """
    if not name:
        raise ServiceError("bad_request", "tenant name must be non-empty")
    if len(name) > MAX_TENANT_LEN:
        raise ServiceError(
            "bad_request",
            f"tenant name longer than {MAX_TENANT_LEN} characters")
    if any(ord(c) < 0x20 or ord(c) == 0x7F for c in name):
        raise ServiceError("bad_request",
                           "tenant name contains control characters")
    return name


def csv_tuple(value: str | None) -> tuple[str, ...] | None:
    """Parse a comma-separated parameter into a tuple (``None`` stays
    ``None``, empty string becomes the empty tuple)."""
    if value is None:
        return None
    return tuple(p for p in (s.strip() for s in value.split(",")) if p)
