"""Analytics service layer: a concurrent XDMoD-style query server.

The paper's end state is dashboards that facility staff and users hit
interactively; this package puts a stateless HTTP/JSON API in front of
the shared :class:`~repro.xdmod.snapshot.WarehouseSnapshot` so
thousands of dashboard sessions share one frozen columnar view, one
report cache, and one in-flight computation per distinct query.

Layout (one concern per module):

* :mod:`repro.service.protocol` — the request/response envelope:
  structured JSON errors, parameter parsing and validation;
* :mod:`repro.service.coalesce` — single-flight request coalescing
  (identical in-flight queries compute once, the result fans out);
* :mod:`repro.service.cache` — the per-tenant LRU report cache layered
  over the snapshot memo;
* :mod:`repro.service.state` — the process-wide service state: the
  warehouse handle, snapshot resolution, and the endpoint compute
  logic;
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  front end and URL routing.

See ``docs/SERVICE.md`` for the protocol and deployment knobs, and
``benchmarks/bench_service_latency.py`` for the latency acceptance
gates (warm-report p99, coalescing rate).
"""

from repro.service.cache import TenantReportCache
from repro.service.coalesce import SingleFlight
from repro.service.protocol import ServiceError
from repro.service.server import ReproServer, make_server
from repro.service.state import ServiceState

__all__ = [
    "ReproServer",
    "ServiceError",
    "ServiceState",
    "SingleFlight",
    "TenantReportCache",
    "make_server",
]
