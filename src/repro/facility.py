"""Facility driver: simulate → collect → ingest → analyze, in one call.

Two measurement paths produce the same warehouse contents:

* :meth:`Facility.run` (fast path) — the behaviour model's rate matrices
  are reduced to job summaries and system series directly, vectorized
  per job.  Used for study-period-scale runs (thousands of jobs) behind
  the figure/table benchmarks.
* :meth:`Facility.run_with_files` (slow path) — per-node TACC_Stats
  daemons serialize the real self-describing text format to a rotating
  archive, and the ingest pipeline parses, matches, and summarizes it
  back.  Used at smaller scale to prove the production pipeline
  end-to-end and to measure the paper's volume/overhead claims.

Both paths construct each job's :class:`~repro.workload.JobBehavior` from
the same seed, so they agree statistically (asserted by integration
tests).
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.outages import Outage, OutageGenerator
from repro.config import FacilityConfig
from repro.ingest.pipeline import IngestPipeline, IngestReport
from repro.ingest.summarize import JobSummary, summarize_job_from_rates
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import lariat_record_for
from repro.scheduler.accounting import AccountingWriter
from repro.scheduler.engine import SchedulerEngine, SimulationResult
from repro.scheduler.job import JobRecord
from repro.scheduler.policies import EasyBackfillPolicy, SchedulingPolicy
from repro.syslogr.generator import SyslogGenerator
from repro.syslogr.rationalizer import Rationalizer
from repro.tacc_stats.archive import ArchiveStats, HostArchive
from repro.tacc_stats.daemon import TaccStatsDaemon
from repro.tacc_stats.synth import NodeSynth
from repro.telemetry.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    use_registry,
)
from repro.telemetry.trace import span
from repro.util.rng import RngFactory
from repro.util.timeutil import aligned_samples
from repro.workload.applications import APP_CATALOG, RATE_INDEX
from repro.workload.behavior import DerivedRates, JobBehavior
from repro.workload.generator import GeneratedWorkload, WorkloadGenerator
from repro.xdmod.query import JobQuery

__all__ = ["Facility", "FacilityRun"]

_I_MEM = RATE_INDEX["mem_used_gb"]
_I_FLOPS = RATE_INDEX["flops_gf"]


def _build_behavior(cfg: FacilityConfig, users: dict, util_scale: float,
                    phase_calibration: dict | None, regressions: tuple,
                    record: JobRecord) -> JobBehavior:
    """Reconstruct a job's behaviour from picklable inputs only.

    Module-level (not a method) so multiprocessing workers can rebuild
    behaviours independently: a behaviour is fully determined by the
    request's seed and the facility context, so shipping the large rate
    matrices between processes is never necessary.
    """
    req = record.request
    flops_scale = 1.0
    for regression in regressions:
        if regression.applies(req.app, record.start_time):
            flops_scale *= regression.flops_factor
    # Application kernels are fixed benchmark inputs: a few percent of
    # run-to-run variance, not the workload's job-level spread.
    variability = 0.12 if req.queue == "appkernel" else 1.0
    return JobBehavior(
        app=APP_CATALOG[req.app],
        user=users[req.user],
        node_hw=cfg.node,
        n_nodes=req.nodes,
        duration=max(record.wall_seconds, cfg.sample_interval),
        sample_interval=cfg.sample_interval,
        behavior_seed=req.behavior_seed,
        util_scale=util_scale,
        calibration=phase_calibration,
        flops_scale=flops_scale,
        variability_scale=variability,
    )


def _noise_stream_factory(rng_factory: RngFactory, prefix: str, ni: int):
    """Collector-noise stream factory for one node.

    Streams are named ``<prefix>/noise/<node>/<collector>``, so every
    draw sequence is fully determined by (seed, node, collector) — the
    determinism contract shared by the scalar daemon, the vectorized
    synthesis engine, and any worker-count decomposition of the replay.
    """
    def stream(name: str) -> np.random.Generator:
        return rng_factory.stream(f"{prefix}/noise/{ni}/{name}")
    return stream


def _node_chunks(num_nodes: int, workers: int) -> list[list[int]]:
    """Split node indices across *workers*, one non-empty chunk each.

    Workers are clamped to the node count: strided splitting with more
    workers than nodes would produce empty chunks, and dispatching a
    pool task that opens an archive handle only to write nothing is
    pure overhead.  The stride keeps each chunk's cost balanced when
    job placement favours low node indices.
    """
    n_workers = min(max(workers, 1), max(num_nodes, 1))
    all_nodes = list(range(num_nodes))
    return [all_nodes[i::n_workers] for i in range(n_workers) if
            all_nodes[i::n_workers]]


def _replay_nodes(
    cfg: FacilityConfig,
    seed: int,
    users: dict,
    util_scale: float,
    phase_calibration: dict | None,
    regressions: tuple,
    records: list[JobRecord],
    node_indices: list[int],
    archive_dir: str,
    compress: bool,
    archive_format: str = "text",
    synthesis: str = "fast",
) -> tuple[ArchiveStats, MetricsSnapshot]:
    """Replay a set of nodes' daemons into the shared archive directory.

    Each node's files are written only by the worker owning that node, so
    concurrent workers never touch the same path; per-node RNG streams
    make the output byte-identical regardless of how nodes are split
    across workers (asserted by tests).  Returns the volume accounting
    plus the replay's telemetry snapshot — collected in a private
    registry so write-side counters merge to the same totals whether the
    replay ran in-process or in a pool worker.
    """
    local = MetricsRegistry()
    with use_registry(local):
        stats = _replay_nodes_body(
            cfg, seed, users, util_scale, phase_calibration, regressions,
            records, node_indices, archive_dir, compress, archive_format,
            synthesis)
    return stats, local.snapshot()


def _replay_nodes_body(
    cfg: FacilityConfig,
    seed: int,
    users: dict,
    util_scale: float,
    phase_calibration: dict | None,
    regressions: tuple,
    records: list[JobRecord],
    node_indices: list[int],
    archive_dir: str,
    compress: bool,
    archive_format: str = "text",
    synthesis: str = "fast",
) -> ArchiveStats:
    """The actual daemon replay; see :func:`_replay_nodes`."""
    from repro.cluster.node import Node

    if synthesis not in ("fast", "scalar"):
        raise ValueError(
            f"synthesis must be 'fast' or 'scalar', got {synthesis!r}")

    rng_factory = RngFactory(seed)
    prefix = cfg.stream_prefix
    # resume_stats=False: each worker reports a session-scoped tally the
    # coordinator sums; resuming from the shared, concurrently-growing
    # directory would double-count sibling workers' files.
    archive = HostArchive(archive_dir, compress=compress,
                          resume_stats=False,
                          archive_format=archive_format)
    wanted = set(node_indices)
    per_node: dict[int, list[tuple[float, float, JobRecord, int]]] = {}
    needed_jobs: set[str] = set()
    for record in records:
        for slot, ni in enumerate(record.node_indices):
            if ni in wanted:
                per_node.setdefault(ni, []).append(
                    (record.start_time, record.end_time, record, slot)
                )
                needed_jobs.add(record.jobid)
    behaviors = {
        r.jobid: _build_behavior(cfg, users, util_scale,
                                 phase_calibration, regressions, r)
        for r in records if r.jobid in needed_jobs
    }

    ticks = aligned_samples(0.0, cfg.horizon, cfg.sample_interval)
    lustre = tuple(
        fs.name for fs in cfg.filesystems if fs.kind == "lustre"
    ) or ("scratch",)
    nfs = tuple(fs.name for fs in cfg.filesystems if fs.kind == "nfs")
    for ni in node_indices:
        node = Node(index=ni,
                    hostname=f"c{ni // 100:03d}-{ni % 100:03d}.{cfg.name}",
                    hardware=cfg.node)
        # Per-collector noise streams keyed (seed, node, collector): each
        # collector's draw sequence is independent of its siblings and of
        # how nodes are chunked across workers, and identical between the
        # scalar daemon and the vectorized synthesis engine.
        noise = _noise_stream_factory(rng_factory, prefix, ni)
        if synthesis == "fast":
            engine = NodeSynth(node, noise, archive,
                               lustre_mounts=lustre, nfs_mounts=nfs)
        else:
            engine = TaccStatsDaemon(
                node,
                noise,
                writer=lambda t, h=node.hostname: archive.writer(h, t),
                lustre_mounts=lustre,
                nfs_mounts=nfs,
            )
        # Same-instant ordering: end < periodic tick < begin, so a
        # back-to-back allocation (next job starts the second the
        # previous one releases the node) replays correctly.
        events: list[tuple[float, int, object]] = [
            (t, 1, None) for t in ticks
        ]
        for start, end, record, slot in per_node.get(ni, []):
            if end > start:
                events.append((start, 2, ("begin", record, slot)))
                events.append((end, 0, ("end", record)))
            else:
                # Zero-duration allocation (a job truncated at the
                # horizon): its end would sort *before* its begin under
                # the same-instant rule, so fire both back to back.
                events.append((start, 2, ("beginend", record, slot)))
        events.sort(key=lambda e: (e[0], e[1]))
        for t, kind, payload in events:
            if kind == 1:
                engine.sample(t)
            elif kind == 2:
                tag, record, slot = payload
                engine.begin_job(record.jobid, t,
                                 behaviors[record.jobid], slot)
                if tag == "beginend":
                    engine.end_job(record.jobid, t)
            else:
                _tag, record = payload
                engine.end_job(record.jobid, t)
        if synthesis == "fast":
            engine.flush()
    return archive.close()


def _replay_nodes_star(args: tuple) -> tuple[ArchiveStats, MetricsSnapshot]:
    return _replay_nodes(*args)


@dataclass
class FacilityRun:
    """Everything one simulated study period produced."""

    config: FacilityConfig
    warehouse: Warehouse
    workload: GeneratedWorkload
    sim: SimulationResult
    outages: list[Outage]
    ingest_report: IngestReport | None = None
    archive_stats: ArchiveStats | None = None

    def query(self) -> JobQuery:
        return JobQuery(self.warehouse, self.config.name)

    @property
    def records(self) -> list[JobRecord]:
        return self.sim.records


class Facility:
    """One simulated system, reproducible from (config, seed)."""

    def __init__(self, config: FacilityConfig, seed: int = 0,
                 policy: SchedulingPolicy | None = None,
                 phase_calibration: dict | None = None,
                 appkernels: tuple | None = None,
                 regressions: tuple | None = None):
        """*appkernels* is a tuple of
        :class:`repro.xdmod.appkernels.AppKernelSpec` to submit on their
        cadences; *regressions* a tuple of
        :class:`repro.xdmod.appkernels.PerfRegression` faults to inject."""
        self.config = config
        self.seed = seed
        self.rng_factory = RngFactory(seed)
        self.policy = policy or EasyBackfillPolicy()
        self.phase_calibration = phase_calibration
        self.appkernels = tuple(appkernels or ())
        self.regressions = tuple(regressions or ())

    def _stream(self, name: str) -> np.random.Generator:
        return self.rng_factory.stream(f"{self.config.stream_prefix}/{name}")

    # -- shared simulation front half ----------------------------------------

    def _simulate(self) -> tuple[GeneratedWorkload, SimulationResult,
                                 list[Outage], Cluster]:
        cfg = self.config
        with span("facility.simulate", system=cfg.name):
            return self._simulate_body(cfg)

    def _simulate_body(self, cfg: FacilityConfig
                       ) -> tuple[GeneratedWorkload, SimulationResult,
                                  list[Outage], Cluster]:
        """Workload generation + scheduling, timed by :meth:`_simulate`."""
        workload = WorkloadGenerator(cfg, self.rng_factory).generate()
        if self.appkernels:
            from repro.xdmod.appkernels import (
                kernel_requests,
                kernel_user_profile,
            )
            kernels = kernel_requests(self.appkernels, cfg, self.seed)
            merged = sorted(workload.requests + kernels,
                            key=lambda r: r.submit_time)
            users = dict(workload.users)
            users[kernel_user_profile().username] = kernel_user_profile()
            workload = GeneratedWorkload(
                requests=merged, users=users,
                util_scale=workload.util_scale,
            )
        cluster = Cluster(cfg.name, cfg.num_nodes, cfg.node,
                          cfg.filesystems, cfg.interconnect)
        outages = OutageGenerator(cfg.num_nodes).generate(
            cfg.horizon, self._stream("outages")
        )
        sim = SchedulerEngine(cluster, self.policy).run(
            workload.requests, outages, horizon=cfg.horizon
        )
        return workload, sim, outages, cluster

    def _behavior_for(self, record: JobRecord,
                      workload: GeneratedWorkload) -> JobBehavior:
        return _build_behavior(
            self.config, workload.users, workload.util_scale,
            self.phase_calibration, self.regressions, record,
        )

    # -- fast path ----------------------------------------------------------------

    def run(self, warehouse: Warehouse | None = None,
            with_syslog: bool = True) -> FacilityRun:
        """Fast path: behaviour → summaries + series → warehouse."""
        cfg = self.config
        workload, sim, outages, _cluster = self._simulate()
        warehouse = warehouse or Warehouse()
        warehouse.add_system(
            cfg.name, num_nodes=cfg.num_nodes,
            cores_per_node=cfg.node.cores,
            mem_gb_per_node=cfg.node.memory_gb,
            peak_tflops=cfg.peak_tflops,
            sample_interval=cfg.sample_interval,
        )

        interval = cfg.sample_interval
        n_bins = int(cfg.horizon // interval) + 1
        bin_times = np.arange(n_bins) * interval
        acc = {
            name: np.zeros(n_bins)
            for name in ("flops_gf", "mem_gb", "idle_nodes_equiv",
                         "user_nodes_equiv", "sys_nodes_equiv",
                         "io_scratch_write_mb", "io_work_write_mb",
                         "io_share_write_mb", "ib_tx_mb", "busy_nodes")
        }

        summaries: list[JobSummary] = []
        syslog_gen = SyslogGenerator(self._stream("syslog"), cfg.name)
        raw_messages = []

        with span("facility.summarize", system=cfg.name):
            for record in sim.records:
                behavior = self._behavior_for(record, workload)
                m = max(1, int(np.ceil(record.wall_seconds / interval)))
                rates = behavior.rates_matrix(m)
                summary = summarize_job_from_rates(
                    record, rates, mem_capacity_gb=cfg.node.memory_gb
                )
                summaries.append(summary)
                warehouse.add_job(cfg.name, record, cfg.node.cores,
                                  summary=summary)

                nodes = record.request.nodes
                bin0 = int(record.start_time // interval)
                bins = bin0 + np.arange(rates.shape[0])
                ok = bins < n_bins
                bins, r = bins[ok], rates[ok]
                if bins.size == 0:
                    continue
                idle = DerivedRates.cpu_idle(r)
                np.add.at(acc["flops_gf"], bins, r[:, _I_FLOPS] * nodes)
                np.add.at(acc["mem_gb"], bins, r[:, _I_MEM] * nodes)
                np.add.at(acc["idle_nodes_equiv"], bins, idle * nodes)
                np.add.at(acc["user_nodes_equiv"], bins,
                          r[:, RATE_INDEX["cpu_user_frac"]] * nodes)
                np.add.at(acc["sys_nodes_equiv"], bins,
                          r[:, RATE_INDEX["cpu_sys_frac"]] * nodes)
                for fs in ("scratch", "work", "share"):
                    np.add.at(acc[f"io_{fs}_write_mb"], bins,
                              r[:, RATE_INDEX[f"io_{fs}_write_mb"]] * nodes)
                np.add.at(acc["ib_tx_mb"], bins,
                          DerivedRates.ib_tx_mb(r) * nodes)
                np.add.at(acc["busy_nodes"], bins, float(nodes))

                if with_syslog:
                    raw_messages.extend(syslog_gen.generate_for_job(
                        record,
                        mem_frac_max=summary.get("mem_used_max")
                        / cfg.node.memory_gb,
                        scratch_write_mb=summary.get("io_scratch_write"),
                        cpu_idle_frac=summary.get("cpu_idle"),
                    ))

        # Active-node step function sampled on the bin grid.
        tl_t = np.array([t for t, _ in sim.active_node_timeline])
        tl_n = np.array([n for _, n in sim.active_node_timeline])
        idx = np.clip(np.searchsorted(tl_t, bin_times, side="right") - 1,
                      0, len(tl_n) - 1)
        active = tl_n[idx].astype(float)

        busy = acc["busy_nodes"]
        free = np.maximum(active - busy, 0.0)
        denom = np.maximum(active, 1.0)
        idle_frac = np.where(
            active > 0, (acc["idle_nodes_equiv"] + free) / denom, 1.0
        )
        user_frac = np.where(active > 0, acc["user_nodes_equiv"] / denom, 0.0)
        sys_frac = np.where(active > 0, acc["sys_nodes_equiv"] / denom, 0.0)
        # Every up node carries the OS's resident footprint; job memory
        # adds on top (the mem collector reports the same decomposition).
        from repro.ingest.summarize import BASE_OS_GB
        mem_per_node = np.where(
            active > 0, acc["mem_gb"] / denom + BASE_OS_GB, 0.0
        )
        ib_per_node = np.where(active > 0, acc["ib_tx_mb"] / denom, 0.0)

        series = {
            "active_nodes": active,
            "busy_nodes": busy,
            "flops_tf": acc["flops_gf"] / 1000.0,
            "mem_used_gb_per_node": mem_per_node,
            "cpu_idle_frac": idle_frac,
            "cpu_user_frac": user_frac,
            "cpu_sys_frac": sys_frac,
            "io_scratch_write_mb": acc["io_scratch_write_mb"],
            "io_work_write_mb": acc["io_work_write_mb"],
            "io_share_write_mb": acc["io_share_write_mb"],
            "net_ib_tx_mb": ib_per_node,
        }
        with span("facility.series", system=cfg.name):
            for name, values in series.items():
                warehouse.add_series(cfg.name, name, bin_times, values)

        if with_syslog and raw_messages:
            raw_messages.extend(syslog_gen.generate_background(
                cfg.num_nodes, cfg.horizon
            ))
            rationalizer = Rationalizer()
            for record in sim.records:
                for ni in record.node_indices:
                    host = f"c{ni // 100:03d}-{ni % 100:03d}.{cfg.name}"
                    rationalizer.add_occupancy(
                        host, record.start_time, record.end_time,
                        record.jobid,
                    )
            rationalizer.finalize()
            messages, _unknown = rationalizer.rationalize_stream(raw_messages)
            for msg in messages:
                warehouse.add_syslog_event(
                    cfg.name, msg.time, msg.host, msg.jobid,
                    msg.kind.value, msg.severity,
                )

        warehouse.commit()
        return FacilityRun(
            config=cfg, warehouse=warehouse, workload=workload, sim=sim,
            outages=outages,
        )

    # -- slow (file-format) path ---------------------------------------------------

    def run_with_files(
        self,
        archive_dir: str,
        warehouse: Warehouse | None = None,
        compress: bool = True,
        workers: int = 1,
        ingest_workers: int = 1,
        batch_size: int = 256,
        error_policy: str = "strict",
        max_retries: int = 2,
        ingest_mode: str = "full",
        ingest_through_day: int | None = None,
        archive_format: str = "text",
        synthesis: str = "fast",
    ) -> FacilityRun:
        """Slow path: daemons write the text format; ingest parses it back.

        Intended for small configs (``TEST_SYSTEM``-scale): cost is
        O(nodes × samples × collectors).  The per-node replay is
        embarrassingly parallel — every node owns its own files and RNG
        stream — so ``workers > 1`` fans it out over a process pool with
        byte-identical output (asserted by tests).  ``ingest_workers``
        and ``batch_size`` are forwarded to
        :meth:`~repro.ingest.pipeline.IngestPipeline.ingest`, which makes
        the same determinism promise for the read-back side.
        *error_policy* and *max_retries* select the ingest's
        fault-tolerance behaviour (see :class:`repro.errors.ErrorPolicy`
        and ``docs/ROBUSTNESS.md``); the default is strict, exactly as
        before.  *ingest_mode* / *ingest_through_day* drive the
        incremental-ingest path (``docs/PERFORMANCE.md``): the replay
        always writes the full horizon, but ``ingest_through_day=N``
        consumes only the first N facility days, and a later
        ``ingest_mode="append"`` run folds in just the remainder.
        *archive_format* selects the daemons' on-disk format
        (``"text"`` or ``"v2"`` columnar); ingest autodetects per file,
        and both formats produce byte-identical warehouses (asserted by
        tests and the columnar bench).  *synthesis* selects the replay
        engine: ``"fast"`` (default) runs the vectorized per-node
        synthesis (:class:`~repro.tacc_stats.synth.NodeSynth`, batched
        collector kernels, direct-to-v2 column writes); ``"scalar"``
        runs the per-sample daemon loop.  Both produce byte-identical
        archives and warehouses (asserted by property tests).
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        cfg = self.config
        workload, sim, outages, cluster = self._simulate()

        replay_args = (
            cfg, self.seed, workload.users, workload.util_scale,
            self.phase_calibration, self.regressions, sim.records,
        )
        with span("facility.replay", system=cfg.name, workers=workers):
            if workers == 1:
                archive_stats, replay_metrics = _replay_nodes(
                    *replay_args, list(range(cfg.num_nodes)), archive_dir,
                    compress, archive_format, synthesis)
                get_registry().merge_snapshot(replay_metrics)
            else:
                import multiprocessing

                chunks = _node_chunks(cfg.num_nodes, workers)
                with multiprocessing.Pool(len(chunks)) as pool:
                    partials = pool.map(_replay_nodes_star, [
                        (*replay_args, chunk, archive_dir, compress,
                         archive_format, synthesis)
                        for chunk in chunks
                    ])
                archive_stats = ArchiveStats()
                for p, snap in partials:
                    archive_stats.raw_bytes += p.raw_bytes
                    archive_stats.compressed_bytes += p.compressed_bytes
                    archive_stats.file_count += p.file_count
                    archive_stats.host_days += p.host_days
                    get_registry().merge_snapshot(snap)
        archive = HostArchive(archive_dir, compress=compress)

        # Side logs.
        acct_buf = io.StringIO()
        acct = AccountingWriter(acct_buf, cfg.node.cores, cfg.name)
        acct.write_all(sim.records)
        lariat_records = [
            lariat_record_for(r, cfg.node.cores) for r in sim.records
        ]

        syslog_gen = SyslogGenerator(self._stream("syslog"), cfg.name)
        raw = []
        for record in sim.records:
            behavior = self._behavior_for(record, workload)
            m = max(1, int(np.ceil(record.wall_seconds / cfg.sample_interval)))
            rates = behavior.rates_matrix(m)
            summary = summarize_job_from_rates(record, rates)
            raw.extend(syslog_gen.generate_for_job(
                record,
                mem_frac_max=summary.get("mem_used_max") / cfg.node.memory_gb,
                scratch_write_mb=summary.get("io_scratch_write"),
                cpu_idle_frac=summary.get("cpu_idle"),
            ))
        rationalizer = Rationalizer()
        for record in sim.records:
            for ni in record.node_indices:
                rationalizer.add_occupancy(
                    cluster.nodes[ni].hostname, record.start_time,
                    record.end_time, record.jobid,
                )
        rationalizer.finalize()
        messages, _ = rationalizer.rationalize_stream(raw)

        warehouse = warehouse or Warehouse()
        pipeline = IngestPipeline(warehouse)
        report = pipeline.ingest(
            cfg,
            accounting_text=acct_buf.getvalue(),
            archive=archive,
            lariat_records=lariat_records,
            syslog=messages,
            workers=ingest_workers,
            batch_size=batch_size,
            error_policy=error_policy,
            max_retries=max_retries,
            mode=ingest_mode,
            through_day=ingest_through_day,
        )
        return FacilityRun(
            config=cfg, warehouse=warehouse, workload=workload, sim=sim,
            outages=outages, ingest_report=report,
            archive_stats=archive_stats,
        )
