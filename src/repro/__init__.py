"""repro: a working reproduction of "Enabling Comprehensive Data-Driven
System Management for Large Computational Facilities" (SC13).

The package rebuilds the paper's full tool chain against a simulated
facility: the TACC_Stats job-aware collector suite and text format, the
Lariat job summarizer, the rationalized syslog, the SUPReMM ingest
pipeline into a relational warehouse, and the XDMoD-style analytics that
regenerate every table and figure of the paper's evaluation.

Quickstart::

    from repro import Facility, RANGER
    from repro.xdmod import UsageProfiler

    run = Facility(RANGER.scaled(num_nodes=128, horizon_days=30),
                   seed=42).run()
    profiler = UsageProfiler(run.query())
    for p in profiler.top_profiles("user", 5):      # Figure 2
        print(p.entity, p.values)
"""

from repro.config import (
    LONESTAR4,
    RANGER,
    STAMPEDE,
    TEST_SYSTEM,
    FacilityConfig,
)
from repro.facility import Facility, FacilityRun
from repro.ingest.summarize import KEY_METRICS, SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse

__version__ = "1.0.0"

__all__ = [
    "Facility",
    "FacilityRun",
    "FacilityConfig",
    "RANGER",
    "LONESTAR4",
    "STAMPEDE",
    "TEST_SYSTEM",
    "Warehouse",
    "KEY_METRICS",
    "SUMMARY_METRICS",
    "__version__",
]
