"""Lariat job-summary records."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.scheduler.job import JobRecord
from repro.workload.applications import APP_CATALOG

__all__ = ["LariatRecord", "lariat_record_for"]


@dataclass(frozen=True)
class LariatRecord:
    """What Lariat learned about one job's execution.

    Attributes
    ----------
    jobid, user:
        Identity, joined against accounting at ingest.
    executable:
        Path of the binary that ran.
    libraries:
        Shared objects the binary linked (the application fingerprint).
    num_ranks, ranks_per_node:
        MPI launch geometry — an undersubscribed launch (1 rank on a
        16-core node) is exactly the Figure 4/5 pathology, visible here
        before any counter is read.
    threads_per_rank:
        OMP_NUM_THREADS at launch.
    work_dir:
        Job working directory (identifies the filesystem in use).
    """

    jobid: str
    user: str
    executable: str
    libraries: tuple[str, ...]
    num_ranks: int
    ranks_per_node: int
    threads_per_rank: int
    work_dir: str

    def __post_init__(self):
        if self.num_ranks < 1 or self.ranks_per_node < 1:
            raise ValueError(f"job {self.jobid}: bad launch geometry")

    def to_json(self) -> str:
        d = asdict(self)
        d["libraries"] = list(self.libraries)
        return json.dumps(d, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LariatRecord":
        d = json.loads(text)
        d["libraries"] = tuple(d["libraries"])
        return cls(**d)

    def guess_app(self) -> str | None:
        """Attribute the job to a catalog application.

        Matches the executable basename first, then the library
        fingerprint (most-specific app whose libraries are a subset).
        """
        exe = self.executable.rsplit("/", 1)[-1].lower()
        for name in APP_CATALOG:
            if name in exe:
                return name
        libs = set(self.libraries)
        best: tuple[int, str] | None = None
        for name, app in APP_CATALOG.items():
            sig = set(app.libraries)
            if sig and sig <= libs:
                if best is None or len(sig) > best[0]:
                    best = (len(sig), name)
        return best[1] if best else None


def lariat_record_for(record: JobRecord, cores_per_node: int) -> LariatRecord:
    """Synthesize the Lariat record a real launch would have produced."""
    req = record.request
    app = APP_CATALOG.get(req.app)
    libs = app.libraries if app else ()
    if req.app in ("serial_farm", "matlab"):
        ranks_per_node = 1
    else:
        ranks_per_node = cores_per_node
    return LariatRecord(
        jobid=req.jobid,
        user=req.user,
        executable=f"/home1/{req.user}/bin/{req.app}.x",
        libraries=tuple(libs),
        num_ranks=req.nodes * ranks_per_node,
        ranks_per_node=ranks_per_node,
        threads_per_rank=1,
        work_dir=f"/scratch/{req.user}/{req.jobid}",
    )
