"""Lariat log: one JSON record per line, one file per system."""

from __future__ import annotations

import io
from typing import Iterator, TextIO

from repro.lariat.records import LariatRecord

__all__ = ["LariatLog", "parse_lariat_log"]


class LariatLog:
    """Streams Lariat records to a text sink."""

    def __init__(self, sink: TextIO):
        self._sink = sink
        self.records_written = 0

    def write(self, record: LariatRecord) -> None:
        self._sink.write(record.to_json())
        self._sink.write("\n")
        self.records_written += 1


def parse_lariat_log(source: TextIO | str) -> Iterator[LariatRecord]:
    """Parse a Lariat log; malformed lines raise ValueError with position."""
    handle = io.StringIO(source) if isinstance(source, str) else source
    for lineno, raw in enumerate(handle, 1):
        line = raw.strip()
        if not line:
            continue
        try:
            yield LariatRecord.from_json(line)
        except (ValueError, KeyError, TypeError) as e:
            raise ValueError(f"lariat log line {lineno}: {e}") from e
