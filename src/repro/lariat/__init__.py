"""Lariat reproduction: per-job execution summaries.

The real Lariat wraps ``ibrun``/job launch and records what actually ran:
the executable, the shared libraries it linked, the MPI launch geometry,
and the runtime environment.  SUPReMM uses it to attribute jobs to
applications; our ingest pipeline does the same (and the tests corrupt
the app tag to prove attribution falls back to Lariat data).
"""

from repro.lariat.logger import LariatLog, parse_lariat_log
from repro.lariat.records import LariatRecord, lariat_record_for

__all__ = ["LariatRecord", "lariat_record_for", "LariatLog", "parse_lariat_log"]
