"""Facility configurations: the paper's two systems plus scaled variants.

``RANGER`` and ``LONESTAR4`` carry the full published specifications (node
counts, processors, memory, filesystems, interconnect, measured average job
length and CPU efficiency).  Full scale is far too large to simulate sample-
by-sample on a laptop, so every config offers :meth:`FacilityConfig.scaled`,
which shrinks the node count and horizon while preserving the per-node
hardware and the workload's statistical structure — all of the paper's
analyses are per-job or node-hour-weighted, so their *shape* is scale free
(see DESIGN.md §3).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cluster.filesystem import (
    FilesystemSpec,
    lonestar4_filesystems,
    ranger_filesystems,
    stampede_filesystems,
)
from repro.cluster.hardware import (
    NodeHardware,
    lonestar4_node,
    ranger_node,
    stampede_node,
)
from repro.cluster.interconnect import InterconnectSpec
from repro.util.timeutil import DAY, MINUTE

__all__ = ["FacilityConfig", "RANGER", "LONESTAR4", "STAMPEDE",
           "TEST_SYSTEM"]


@dataclass(frozen=True)
class FacilityConfig:
    """Everything needed to instantiate and drive one simulated system.

    Attributes
    ----------
    name:
        System identifier (``"ranger"``).
    num_nodes:
        Compute node count.
    node:
        Per-node hardware.
    filesystems:
        Shared mounts.
    interconnect:
        Fabric description.
    sample_interval:
        TACC_Stats cadence in seconds (paper: 10 minutes).
    horizon:
        Simulated duration in seconds.
    target_utilization:
        Fraction of node-hours the workload generator *submits* demand
        for.  XSEDE systems of this era were over-requested — "given the
        over-request of most if not all HPC resources" (paper §5) — so the
        default keeps a standing backlog (1.0 = demand equals capacity;
        delivered utilization lands in the mid-90s after fragmentation).
        The backlog matters beyond realism: a draining queue makes the
        free-node pool fluctuate, which would dominate the system
        cpu_idle series and destroy the persistence structure of Table 1.
    avg_job_minutes:
        Target node-hour-weighted mean job length (Ranger 549 min,
        Lonestar4 446 min) — drives the persistence time scale.
    target_efficiency:
        Facility-average CPU efficiency, 1 − mean cpu_idle (Ranger 0.90,
        Lonestar4 0.85) — drives Figure 4's red line.
    n_users:
        Size of the user population (~2000 submitted to Ranger).
    workload_scale:
        Multiplier on per-app node-count distributions so scaled-down
        systems still see a mix of small and "large" jobs.
    seed_label:
        Mixed into RNG stream names so the two systems draw independently.
    """

    name: str
    num_nodes: int
    node: NodeHardware
    filesystems: tuple[FilesystemSpec, ...]
    interconnect: InterconnectSpec
    sample_interval: float = 10 * MINUTE
    horizon: float = 60 * DAY
    target_utilization: float = 1.0
    avg_job_minutes: float = 549.0
    target_efficiency: float = 0.90
    n_users: int = 200
    workload_scale: float = 1.0
    seed_label: str = ""

    def __post_init__(self):
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0 < self.target_efficiency <= 1:
            raise ValueError("target_efficiency must be in (0, 1]")
        if self.sample_interval <= 0 or self.horizon <= 0:
            raise ValueError("sample_interval and horizon must be positive")

    @property
    def peak_tflops(self) -> float:
        return self.num_nodes * self.node.peak_gflops / 1000.0

    @property
    def stream_prefix(self) -> str:
        """Prefix for RNG stream names, unique per system."""
        return self.seed_label or self.name

    def scaled(
        self,
        num_nodes: int,
        horizon_days: float | None = None,
        n_users: int | None = None,
    ) -> "FacilityConfig":
        """A smaller instance of this system for laptop-scale runs.

        The per-node hardware, filesystem policy, sampling cadence, target
        efficiency and mean job length are preserved; node-count
        distributions are compressed proportionally via ``workload_scale``.
        """
        changes: dict = {
            "num_nodes": num_nodes,
            "workload_scale": self.workload_scale * num_nodes / self.num_nodes,
        }
        if horizon_days is not None:
            changes["horizon"] = horizon_days * DAY
        if n_users is not None:
            changes["n_users"] = n_users
        return dataclasses.replace(self, **changes)


#: Ranger as published: 3936 nodes × 16 Opteron cores, 32 GB, 579 TF peak,
#: three Lustre mounts, SDR InfiniBand; avg weighted job length 549 min,
#: average CPU efficiency 90 %, ~2000 active users.
RANGER = FacilityConfig(
    name="ranger",
    num_nodes=3936,
    node=ranger_node(),
    filesystems=ranger_filesystems(),
    interconnect=InterconnectSpec(kind="infiniband", link_gbps=8.0),
    avg_job_minutes=549.0,
    target_efficiency=0.90,
    n_users=2000,
)

#: Lonestar4 as published: 1888 nodes × 12 Westmere cores, 24 GB, QDR IB,
#: Lustre + NFS; avg job length 446 min, average CPU efficiency 85 %.
#: (§4.1 of the paper says 1088 nodes, Figure 8's caption says 1888; we use
#: 1888, matching the active-node plot this config must reproduce.)
LONESTAR4 = FacilityConfig(
    name="lonestar4",
    num_nodes=1888,
    node=lonestar4_node(),
    filesystems=lonestar4_filesystems(),
    interconnect=InterconnectSpec(kind="infiniband", link_gbps=32.0),
    avg_job_minutes=446.0,
    target_efficiency=0.85,
    n_users=1200,
)

#: Stampede as deployed in 2013: 6400 nodes × 16 Sandy Bridge cores,
#: 32 GB, FDR InfiniBand — the federation's third archetype, with a PMC
#: event set (AVX SIMD_FP_256, LLC misses) incomparable to both Ranger's
#: SSE_FLOPS and Lonestar4's FP_COMP_OPS.  Workload facts extrapolate
#: the paper's pattern: shorter mean jobs than Ranger, efficiency
#: between the two published systems, the era's largest user base.
STAMPEDE = FacilityConfig(
    name="stampede",
    num_nodes=6400,
    node=stampede_node(),
    filesystems=stampede_filesystems(),
    interconnect=InterconnectSpec(kind="infiniband", link_gbps=56.0),
    avg_job_minutes=480.0,
    target_efficiency=0.88,
    n_users=2600,
)

#: Tiny system for unit tests: fast to simulate end-to-end through the
#: real text-format pipeline.
TEST_SYSTEM = RANGER.scaled(num_nodes=16, horizon_days=2, n_users=12)
