"""Per-job metric summaries.

``SUMMARY_METRICS`` is the canonical job-level metric set stored in the
warehouse.  It contains the paper's eight key metrics (§4.2) —

    cpu_idle, mem_used, mem_used_max, cpu_flops, io_scratch_write,
    io_work_write, net_ib_tx, net_lnet_tx

— plus the supporting metrics the system-level reports need (cpu_user /
cpu_sys for Figure 7b, reads and the share mount for Figure 7c, rx sides
of the networks).

Two constructors produce identical summaries:

* :func:`summarize_job_from_hosts` — the production path: parsed host
  files in, rollover-corrected counter deltas out.
* :func:`summarize_job_from_rates` — the fast synthesis path used for
  large-scale benchmarks, consuming the behaviour model's rate matrix
  directly.

The production path is split into a per-host map step and a per-job
reduce step so the ingest engine can compute :class:`HostJobPartial`
values for each host independently (including in worker processes —
partials are small and picklable, unlike parsed host data) and merge
them deterministically with :func:`merge_job_partials`:

    host file ──parse──> HostData ──host_job_partials──> {job: partial}
    {job: [partials across hosts]} ──merge_job_partials──> JobSummary

A metric is ``missing`` from the merged summary only when *no* host
produced it; a single degraded node (truncated file, absent collector)
no longer discards the values every other node supplied.  The one
exception is a *poisoned* metric — user-reprogrammed performance
counters make ``cpu_flops`` untrustworthy for the whole job, because
the same batch script reprogrammed every node it touched.

Units: fractions for cpu_*, GF/s/node for cpu_flops, GB/node for memory,
MB/s/node for I/O and network.  All "mean" metrics are time-weighted over
the job's samples and node-averaged, matching the paper's node-hour
weighting when aggregated (each node of a job contributes equally for the
same wall window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduler.job import JobRecord
from repro.tacc_stats.collectors.intel_pmc import FP_OVERCOUNT
from repro.tacc_stats.parser import event_delta
from repro.tacc_stats.types import HostData
from repro.util.units import GB, KB
from repro.workload.applications import RATE_INDEX
from repro.workload.behavior import DerivedRates

__all__ = [
    "SUMMARY_METRICS",
    "HostJobPartial",
    "JobSummary",
    "SummaryError",
    "host_job_partials",
    "merge_job_partials",
    "summarize_job_from_hosts",
    "summarize_job_from_rates",
]

SUMMARY_METRICS: tuple[str, ...] = (
    "cpu_idle",
    "cpu_user",
    "cpu_sys",
    "cpu_flops",
    "mem_used",
    "mem_used_max",
    "io_scratch_write",
    "io_scratch_read",
    "io_work_write",
    "io_work_read",
    "io_share_write",
    "io_share_read",
    "net_ib_tx",
    "net_ib_rx",
    "net_lnet_tx",
    "net_lnet_rx",
)

#: The paper's eight key metrics (§4.2), in radar-chart order.
KEY_METRICS: tuple[str, ...] = (
    "cpu_idle",
    "mem_used",
    "mem_used_max",
    "cpu_flops",
    "io_scratch_write",
    "io_work_write",
    "net_ib_tx",
    "net_lnet_tx",
)


class SummaryError(ValueError):
    """A job has no usable stats to summarize (every node's window was
    empty, truncated away, or quarantined).

    Subclasses :class:`ValueError` for backward compatibility, but the
    pipeline catches *this* type only — a plain ``ValueError`` out of
    the summarize layer (unknown metric keys, present-and-missing
    overlap) is a real bug and must propagate.
    """


@dataclass(frozen=True)
class JobSummary:
    """One job's reduced metrics.

    ``missing`` lists metrics that could not be computed (e.g. the PMCs
    carried user-programmed events, or a node's file was truncated); those
    keys are absent from ``metrics``.
    """

    jobid: str
    metrics: dict[str, float]
    n_nodes: int
    wall_seconds: float
    n_samples: int
    missing: tuple[str, ...] = ()

    def __post_init__(self):
        unknown = set(self.metrics) - set(SUMMARY_METRICS)
        if unknown:
            raise ValueError(f"job {self.jobid}: unknown metrics {unknown}")
        overlap = set(self.metrics) & set(self.missing)
        if overlap:
            raise ValueError(
                f"job {self.jobid}: metrics both present and missing: {overlap}"
            )

    @property
    def node_hours(self) -> float:
        return self.n_nodes * self.wall_seconds / 3600.0

    def get(self, metric: str, default: float = float("nan")) -> float:
        return self.metrics.get(metric, default)


# ---------------------------------------------------------------------------
# Production path: from parsed host data, via per-host partials.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostJobPartial:
    """One host's contribution to one job's summary.

    ``metrics`` holds the metrics this host could compute; ``poisoned``
    names metrics this host invalidates for the *whole job* (currently
    only ``cpu_flops`` under user-reprogrammed PMCs).  Partials are tiny
    and picklable, so worker processes can ship them back to the merge
    step without ever serializing parsed host data.
    """

    hostname: str
    jobid: str
    metrics: dict[str, float]
    poisoned: tuple[str, ...]
    n_blocks: int
    seconds: float


def _delta_rate(host: HostData, blocks, type_name: str, key: str,
                scale: float, seconds: float) -> float | None:
    """Summed per-device counter delta (first→last block) as a rate."""
    schema = host.schemas.get(type_name)
    if schema is None:
        return None
    try:
        col, width = schema.column(key)
    except KeyError:
        # Degraded or older collector build: the type exists but this
        # column does not — the metric is simply absent on this host.
        return None
    first, last = blocks[0], blocks[-1]
    devs_first = first.rows.get(type_name)
    devs_last = last.rows.get(type_name)
    if not devs_first or not devs_last:
        return None
    total = 0
    for dev, v_last in devs_last.items():
        v_first = devs_first.get(dev)
        if v_first is None:
            return None
        total += event_delta(int(v_first[col]), int(v_last[col]), width)
    return total * scale / seconds


def _gauge_stats(host: HostData, blocks, type_name: str, key: str,
                 agg_devices: str = "sum") -> tuple[float, float] | None:
    """(time-mean, max) of a gauge across the job's blocks.

    Gauges are summed (or averaged) across devices per block first.
    """
    schema = host.schemas.get(type_name)
    if schema is None:
        return None
    try:
        col = schema.index_of(key)
    except KeyError:
        return None
    vals = []
    for b in blocks:
        devs = b.rows.get(type_name)
        if not devs:
            continue
        per_dev = np.array([float(v[col]) for v in devs.values()])
        vals.append(per_dev.sum() if agg_devices == "sum" else per_dev.mean())
    if not vals:
        return None
    arr = np.asarray(vals)
    return float(arr.mean()), float(arr.max())


def _flops_rate(host: HostData, blocks, seconds: float) -> float | None:
    """GF/s from whichever PMC type the host carries, None if unusable."""
    if "amd64_pmc" in host.schemas:
        rate = _delta_rate(host, blocks, "amd64_pmc", "ctr0", 1.0, seconds)
        if rate is None:
            return None
        return rate / 1e9
    if "intel_pmc" in host.schemas:
        rate = _delta_rate(host, blocks, "intel_pmc", "ctr0", 1.0, seconds)
        if rate is None:
            return None
        # FP_COMP_OPS over-counts; correct to FLOP/s (the paper does not —
        # it simply declares the two systems incomparable — but storing a
        # corrected value keeps our warehouse internally consistent, and
        # the raw counter remains available in the archive).
        return rate / FP_OVERCOUNT / 1e9
    return None


def _pmc_is_foreign(host: HostData, blocks) -> bool:
    """True when the job's PMC control registers carry non-TACC codes."""
    from repro.tacc_stats.collectors.amd64_pmc import AMD64_EVENT_CODES
    from repro.tacc_stats.collectors.intel_pmc import INTEL_EVENT_CODES

    for type_name, codes in (
        ("amd64_pmc", set(AMD64_EVENT_CODES.values())),
        ("intel_pmc", set(INTEL_EVENT_CODES.values())),
    ):
        schema = host.schemas.get(type_name)
        if schema is None:
            continue
        ctl_cols = [i for i, e in enumerate(schema.entries)
                    if e.key.startswith("ctl")]
        for b in blocks:
            devs = b.rows.get(type_name)
            if not devs:
                continue
            for v in devs.values():
                for c in ctl_cols:
                    # uint64 scalars hash/compare like ints; no int()
                    # conversion needed in this triple loop.
                    if v[c] not in codes:
                        return True
    return False


def _host_partial(host: HostData, jobid: str,
                  blocks: list) -> HostJobPartial | None:
    """One host's metric contributions for one job, or None if unusable."""
    if len(blocks) < 2:
        return None
    seconds = blocks[-1].time - blocks[0].time
    if seconds <= 0:
        return None
    h: dict[str, float] = {}
    poisoned: tuple[str, ...] = ()

    # CPU fractions from per-core centisecond counters.
    parts = {}
    for key in ("user", "system", "idle", "iowait", "irq", "softirq",
                "nice"):
        r = _delta_rate(host, blocks, "cpu", key, 1.0, seconds)
        if r is None:
            parts = None
            break
        parts[key] = r
    if parts is not None:
        total = sum(parts.values())
        if total > 0:
            h["cpu_idle"] = parts["idle"] / total
            h["cpu_user"] = (parts["user"] + parts["nice"]) / total
            h["cpu_sys"] = (
                parts["system"] + parts["irq"] + parts["softirq"]
            ) / total

    # FLOPS.  A user-reprogrammed PMC invalidates the metric for the
    # whole job (the same batch script touched every node), so it is
    # poisoned rather than merely absent on this host.
    if _pmc_is_foreign(host, blocks):
        poisoned = ("cpu_flops",)
    else:
        flops = _flops_rate(host, blocks, seconds)
        if flops is not None:
            h["cpu_flops"] = flops

    # Memory gauges (KB per socket; summed across sockets = node).
    mem = _gauge_stats(host, blocks, "mem", "MemUsed", "sum")
    if mem is not None:
        h["mem_used"] = mem[0] * KB / GB
        h["mem_used_max"] = mem[1] * KB / GB

    # Shared-filesystem per-mount traffic.  scratch/work are always
    # Lustre; the "share" slot is the Lustre share mount on Ranger but
    # the NFS home on Lonestar4, so fall back to the nfs collector
    # (summing its mounts) when llite has no such device.
    for mount in ("scratch", "work", "share"):
        for op, key in (("write", "write_bytes"), ("read", "read_bytes")):
            rate = _mount_delta_rate(host, blocks, "llite", mount, key,
                                     seconds)
            if rate is None and mount == "share":
                rate = _delta_rate(host, blocks, "nfs", key, 1.0, seconds)
            if rate is not None:
                h[f"io_{mount}_{op}"] = rate / 1e6

    # InfiniBand port counters (32-bit words; rollover handled by
    # per-interval accumulation: delta across *consecutive* blocks).
    for direction, key in (("tx", "port_xmit_data"), ("rx", "port_rcv_data")):
        rate = _chained_delta_rate(host, blocks, "ib", key, 4.0, seconds)
        if rate is not None:
            h[f"net_ib_{direction}"] = rate / 1e6

    # lnet.
    for direction, key in (("tx", "tx_bytes"), ("rx", "rx_bytes")):
        rate = _delta_rate(host, blocks, "lnet", key, 1.0, seconds)
        if rate is not None:
            h[f"net_lnet_{direction}"] = rate / 1e6

    return HostJobPartial(
        hostname=host.hostname,
        jobid=jobid,
        metrics=h,
        poisoned=poisoned,
        n_blocks=len(blocks),
        seconds=seconds,
    )


def host_job_partials(
    host: HostData,
    jobids: tuple[str, ...] | None = None,
) -> dict[str, HostJobPartial]:
    """Per-job partial summaries for every job this host's stream tagged.

    The map step of the ingest engine: one pass groups the host's blocks
    by job, then each job's window is reduced independently.  Restrict to
    *jobids* to skip jobs the caller already knows it does not need.
    """
    by_job: dict[str, list] = {}
    wanted = set(jobids) if jobids is not None else None
    for b in host.blocks:
        for jid in b.jobids:
            if wanted is None or jid in wanted:
                by_job.setdefault(jid, []).append(b)
    out: dict[str, HostJobPartial] = {}
    for jid, blocks in by_job.items():
        partial = _host_partial(host, jid, blocks)
        if partial is not None:
            out[jid] = partial
    return out


def merge_job_partials(
    jobid: str,
    partials: list[HostJobPartial],
    wall_seconds: float | None = None,
) -> JobSummary:
    """Reduce per-host partials to the job's summary (deterministic).

    Pass partials in a stable host order — metric means are accumulated
    in list order, so the same partials in the same order produce
    bit-identical floats regardless of which process computed them.
    """
    if not partials:
        raise SummaryError(f"job {jobid}: no usable host windows")
    poisoned: set[str] = set()
    for p in partials:
        poisoned.update(p.poisoned)
    metrics: dict[str, float] = {}
    missing = set(poisoned)
    for m in SUMMARY_METRICS:
        if m in poisoned:
            continue
        vals = [p.metrics[m] for p in partials if m in p.metrics]
        if not vals:
            missing.add(m)
            continue
        if m == "mem_used_max":
            metrics[m] = float(np.max(vals))
        else:
            metrics[m] = float(np.mean(vals))
    return JobSummary(
        jobid=jobid,
        metrics=metrics,
        n_nodes=len(partials),
        wall_seconds=wall_seconds if wall_seconds is not None
        else float(np.median([p.seconds for p in partials])),
        n_samples=sum(p.n_blocks for p in partials),
        missing=tuple(sorted(missing)),
    )


def summarize_job_from_hosts(
    jobid: str,
    hosts: list[HostData],
    wall_seconds: float | None = None,
) -> JobSummary:
    """Reduce the parsed stats of all of a job's nodes to one summary.

    Equivalent to mapping :func:`host_job_partials` over *hosts* (in
    order) and reducing with :func:`merge_job_partials`; the ingest
    engine uses those pieces directly so the map step can run in worker
    processes.
    """
    if not hosts:
        raise SummaryError(f"job {jobid}: no host data")
    wanted = (jobid,)
    partials = []
    for host in hosts:
        partial = host_job_partials(host, wanted).get(jobid)
        if partial is not None:
            partials.append(partial)
    return merge_job_partials(jobid, partials, wall_seconds)


def _mount_delta_rate(host: HostData, blocks, type_name: str, device: str,
                      key: str, seconds: float) -> float | None:
    """Counter delta for one specific device of a type, as a rate."""
    schema = host.schemas.get(type_name)
    if schema is None:
        return None
    try:
        col, width = schema.column(key)
    except KeyError:
        # Degraded or older collector build: the type exists but this
        # column does not — the metric is simply absent on this host.
        return None
    dev_first = blocks[0].rows.get(type_name, {}).get(device)
    dev_last = blocks[-1].rows.get(type_name, {}).get(device)
    if dev_first is None or dev_last is None:
        return None
    return event_delta(int(dev_first[col]), int(dev_last[col]),
                       width) / seconds


def _chained_delta_rate(host: HostData, blocks, type_name: str, key: str,
                        scale: float, seconds: float) -> float | None:
    """Counter delta accumulated interval-by-interval.

    Narrow (32-bit) counters can wrap more than once over a whole job but
    at most once per 10-minute interval at physical rates; summing
    per-interval rollover-corrected deltas recovers the true total.  This
    is exactly why TACC_Stats samples periodically rather than only at job
    begin/end.
    """
    schema = host.schemas.get(type_name)
    if schema is None:
        return None
    try:
        col, width = schema.column(key)
    except KeyError:
        # Degraded or older collector build: the type exists but this
        # column does not — the metric is simply absent on this host.
        return None
    total = 0
    for prev, cur in zip(blocks, blocks[1:]):
        devs_prev = prev.rows.get(type_name)
        devs_cur = cur.rows.get(type_name)
        if not devs_prev or not devs_cur:
            return None
        for dev, v_cur in devs_cur.items():
            v_prev = devs_prev.get(dev)
            if v_prev is None:
                return None
            total += event_delta(int(v_prev[col]), int(v_cur[col]), width)
    return total * scale / seconds


# ---------------------------------------------------------------------------
# Fast path: from the behaviour model's rate matrix.
# ---------------------------------------------------------------------------


#: Kernel + daemon memory resident on every node (mirrors the mem
#: collector's base so both summary paths measure the same quantity —
#: the paper's mem_used includes everything the OS holds).
BASE_OS_GB = 1.2


def summarize_job_from_rates(
    record: JobRecord,
    rates: np.ndarray,
    mem_spread_max: float = 1.25,
    mem_capacity_gb: float | None = None,
) -> JobSummary:
    """Summary straight from a (n_samples, n_fields) node-average rate
    matrix — what the text-format path would have produced, minus
    measurement noise.

    ``mem_spread_max`` models the heaviest node's memory relative to the
    node average (rank 0 holds extra buffers), so ``mem_used_max`` keeps
    its meaning of "peak over all nodes and samples".
    """
    if rates.ndim != 2 or rates.shape[0] < 1:
        raise ValueError("rates must be a non-empty 2-D matrix")
    r = rates
    idx = RATE_INDEX
    n_nodes = record.request.nodes
    # Mean static per-node memory spread: node 0 carries 1.25x.
    mem_spread_mean = (mem_spread_max + (n_nodes - 1)) / n_nodes
    # One pass over the matrix for all column means (profiling: 16
    # separate .mean() calls per job dominate large fast-path runs).
    col_mean = r.mean(axis=0)
    idle_mean = float(np.clip(
        1.0 - col_mean[idx["cpu_user_frac"]] - col_mean[idx["cpu_sys_frac"]]
        - col_mean[idx["cpu_iowait_frac"]], 0.0, 1.0,
    ))
    lnet_tx = float(DerivedRates.lnet_tx_mb(col_mean))
    lnet_rx = float(DerivedRates.lnet_rx_mb(col_mean))
    mpi = float(col_mean[idx["net_mpi_mb"]])
    metrics = {
        "cpu_idle": idle_mean,
        "cpu_user": float(col_mean[idx["cpu_user_frac"]]),
        "cpu_sys": float(col_mean[idx["cpu_sys_frac"]]),
        "cpu_flops": float(col_mean[idx["flops_gf"]]),
        "mem_used": float(
            col_mean[idx["mem_used_gb"]] * mem_spread_mean + BASE_OS_GB
        ),
        "mem_used_max": float(
            r[:, idx["mem_used_gb"]].max() * mem_spread_max + BASE_OS_GB
        ),
        "io_scratch_write": float(col_mean[idx["io_scratch_write_mb"]]),
        "io_scratch_read": float(col_mean[idx["io_scratch_read_mb"]]),
        "io_work_write": float(col_mean[idx["io_work_write_mb"]]),
        "io_work_read": float(col_mean[idx["io_work_read_mb"]]),
        "io_share_write": float(col_mean[idx["io_share_write_mb"]]),
        "io_share_read": float(col_mean[idx["io_share_read_mb"]]),
        "net_ib_tx": mpi + lnet_tx,
        "net_ib_rx": mpi + lnet_rx,
        "net_lnet_tx": lnet_tx,
        "net_lnet_rx": lnet_rx,
    }
    if mem_capacity_gb is not None:
        cap = 0.995 * mem_capacity_gb
        metrics["mem_used"] = min(metrics["mem_used"], cap)
        metrics["mem_used_max"] = min(metrics["mem_used_max"], cap)
    return JobSummary(
        jobid=record.jobid,
        metrics=metrics,
        n_nodes=record.request.nodes,
        wall_seconds=record.wall_seconds,
        n_samples=r.shape[0],
    )
