"""Columnar fast path: HostScan straight from v2 column chunks.

The generic ingest path materializes a :class:`HostData` — per-block
``{type: {device: vector}}`` dicts — and lets :func:`host_job_partials`
iterate them.  For v2 archives that round trip through Python dicts is
the bottleneck: building ~5k row dicts per host-day costs more than
mapping the file did.  This module computes the same
:class:`~repro.ingest.parallel.HostScan` (matcher views + per-job metric
partials) directly from the mapped column arrays, without ever building
row dicts.

Float-for-float parity with the dict path is a hard requirement (the
warehouse must be byte-identical), so every reduction here replicates
the generic code's *exact* arithmetic:

* counter deltas (:func:`event_delta`) are integer math — order-free, so
  they vectorize freely;
* gauge statistics sum devices per block and then average blocks with
  the same numpy reductions over the same values in the same order
  (pairwise summation over an axis of a contiguous array is identical
  to summing each row separately);
* PMC-foreignness is a boolean — ``np.isin`` replaces the triple loop.

Anything the columns cannot express in the common shape (device sets
changing mid-job, counter values out of range) falls back to a small
dict built for just the blocks involved, running the generic inner
loop — so the odd host is slower, never wrong.  ``tests`` assert
partial-level equality against the dict path on simulated corpora, and
the columnar bench + CI assert warehouse byte-identity end to end.

Multi-day merge semantics mirror :meth:`HostArchive.read_host_checked`
exactly (empty-file skip, hostname-mismatch and schema-drift
quarantine); hosts whose day files are not all v2, or whose merged
stream violates the concatenation invariants, are handed back to the
generic path (``None`` from :func:`scan_v2_host`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ErrorPolicy, QuarantinedRecord
from repro.ingest.matcher import HostJobView
from repro.ingest.summarize import HostJobPartial
from repro.tacc_stats.collectors.amd64_pmc import AMD64_EVENT_CODES
from repro.tacc_stats.collectors.intel_pmc import (
    FP_OVERCOUNT,
    INTEL_EVENT_CODES,
)
from repro.tacc_stats.columnar import V2HostDay, is_v2_path, read_host_day
from repro.tacc_stats.parser import ParseError, event_delta
from repro.tacc_stats.schema import TypeSchema
from repro.tacc_stats.types import Mark
from repro.telemetry.trace import span
from repro.util.units import GB, KB

__all__ = ["ColumnarHost", "build_columnar_host", "scan_v2_host"]


@dataclass
class _TypeCols:
    """One record type's merged columns across a host's day files."""

    schema: TypeSchema
    devices: list[str]
    dev_map: dict[str, int]
    dev_idx: np.ndarray   # i8[Rt] unified device index per row
    values: np.ndarray    # u8[Rt, K] value matrix
    seg: np.ndarray       # i8[N+1]: rows of block b are seg[b]:seg[b+1]


class ColumnarHost:
    """A host's merged day files as columns — the fast path's HostData."""

    def __init__(self, hostname: str):
        self.hostname = hostname
        self.schemas: dict[str, TypeSchema] = {}
        self.times: list[float] = []
        self.jobids: list[tuple[str, ...]] = []
        self.marks: list[Mark] = []
        self.types: dict[str, _TypeCols] = {}

    def job_window(self, jobid: str) -> tuple[float, float] | None:
        """(begin, end) mark times — :meth:`HostData.job_window`."""
        begin = end = None
        for m in self.marks:
            if m.jobid != jobid:
                continue
            if m.kind == "begin" and begin is None:
                begin = m.time
            elif m.kind == "end":
                end = m.time
        if begin is None or end is None:
            return None
        return (begin, end)


def build_columnar_host(hostname: str,
                        days: list[V2HostDay]) -> ColumnarHost | None:
    """Merge one host's decoded day files into a :class:`ColumnarHost`.

    The caller (:func:`scan_v2_host`) has already checked schema drift
    and hostname consistency across *days*.  Returns ``None`` when the
    merged stream violates the concatenation invariants (non-monotonic
    block times across files) — the generic sort-based merge path
    handles that case.
    """
    ch = ColumnarHost(hostname)
    for day in days:
        for t in day.types:
            ch.schemas.setdefault(t.name, t.schema)

    per_type: dict[str, list] = {name: [] for name in ch.schemas}
    n_blocks = 0
    for day in days:
        times = day.times.tolist()
        if ch.times and times and times[0] < ch.times[-1]:
            return None  # cross-file overlap: generic merge sorts, we don't
        tag_tuples = [
            () if tag == "-" else tuple(tag.split(","))
            for tag in day.header["jobid_tags"]
        ]
        ch.times.extend(times)
        ch.jobids.extend(tag_tuples[g] for g in day.tags.tolist())
        ch.marks.extend(
            Mark(time=times[b], kind=kind, jobid=jobid)
            for b, kind, jobid in day.header["marks"]
        )
        row_type = day.row_type
        row_block = day.row_block
        for ti, tc in enumerate(day.types):
            if tc.values.shape[0] == 0:
                continue
            mask = row_type == ti
            per_type[tc.name].append(
                (n_blocks, tc, row_block[mask].astype(np.int64)))
        n_blocks += len(times)
    # merge_from sorts marks by time (stable); per-day lists are already
    # time-ordered, so a stable sort of the concatenation matches it.
    ch.marks.sort(key=lambda m: m.time)

    for name, schema in ch.schemas.items():
        devices: list[str] = []
        dev_map: dict[str, int] = {}
        dev_parts, val_parts, blk_parts = [], [], []
        for block_off, tc, rb in per_type[name]:
            remap = np.empty(len(tc.devices), dtype=np.int64)
            for i, dev in enumerate(tc.devices):
                di = dev_map.get(dev)
                if di is None:
                    di = dev_map[dev] = len(devices)
                    devices.append(dev)
                remap[i] = di
            dev_parts.append(remap[tc.dev_idx])
            val_parts.append(tc.values)
            blk_parts.append(rb + block_off)
        if dev_parts:
            dev_idx = np.concatenate(dev_parts)
            values = np.vstack(val_parts)
            block_of = np.concatenate(blk_parts)
        else:
            dev_idx = np.empty(0, dtype=np.int64)
            values = np.empty((0, schema.n_values), dtype=np.uint64)
            block_of = np.empty(0, dtype=np.int64)
        seg = np.searchsorted(block_of, np.arange(n_blocks + 1))
        ch.types[name] = _TypeCols(
            schema=schema, devices=devices, dev_map=dev_map,
            dev_idx=dev_idx, values=values, seg=seg)
    return ch


# ---------------------------------------------------------------------------
# Metric reductions (parity-exact counterparts of summarize._*).
# ---------------------------------------------------------------------------


def _delta_rate(ch: ColumnarHost, bidx, type_name: str, key: str,
                scale: float, seconds: float) -> float | None:
    """Columnar :func:`summarize._delta_rate` (first->last, summed)."""
    tc = ch.types.get(type_name)
    if tc is None:
        return None
    try:
        col, width = tc.schema.column(key)
    except KeyError:
        return None
    s0, e0 = tc.seg[bidx[0]], tc.seg[bidx[0] + 1]
    s1, e1 = tc.seg[bidx[-1]], tc.seg[bidx[-1] + 1]
    if e0 == s0 or e1 == s1:
        return None
    d0 = tc.dev_idx[s0:e0]
    v0 = tc.values[s0:e0, col]
    v1 = tc.values[s1:e1, col]
    if np.array_equal(d0, tc.dev_idx[s1:e1]):
        pairs = zip(v0.tolist(), v1.tolist())
    else:
        first_pos = {d: i for i, d in enumerate(d0.tolist())}
        v0l, v1l = v0.tolist(), v1.tolist()
        pairs = []
        for j, d in enumerate(tc.dev_idx[s1:e1].tolist()):
            i = first_pos.get(d)
            if i is None:
                return None  # device present at the end, absent at start
            pairs.append((v0l[i], v1l[j]))
    total = 0
    for first, last in pairs:
        total += event_delta(first, last, width)
    return total * scale / seconds


def _mount_delta_rate(ch: ColumnarHost, bidx, type_name: str, device: str,
                      key: str, seconds: float) -> float | None:
    """Columnar :func:`summarize._mount_delta_rate` (one device)."""
    tc = ch.types.get(type_name)
    if tc is None:
        return None
    try:
        col, width = tc.schema.column(key)
    except KeyError:
        return None
    di = tc.dev_map.get(device)
    if di is None:
        return None
    s0, e0 = tc.seg[bidx[0]], tc.seg[bidx[0] + 1]
    s1, e1 = tc.seg[bidx[-1]], tc.seg[bidx[-1] + 1]
    p0 = np.flatnonzero(tc.dev_idx[s0:e0] == di)
    p1 = np.flatnonzero(tc.dev_idx[s1:e1] == di)
    if p0.size == 0 or p1.size == 0:
        return None
    return event_delta(int(tc.values[s0 + p0[0], col]),
                       int(tc.values[s1 + p1[0], col]), width) / seconds


def _chained_delta_rate(ch: ColumnarHost, bidx, type_name: str, key: str,
                        scale: float, seconds: float) -> float | None:
    """Columnar :func:`summarize._chained_delta_rate` (per-interval)."""
    tc = ch.types.get(type_name)
    if tc is None:
        return None
    try:
        col, width = tc.schema.column(key)
    except KeyError:
        return None
    starts = tc.seg[bidx]
    ends = tc.seg[bidx + 1]
    counts = ends - starts
    if (counts == 0).any():
        return None  # some block lacks the type entirely
    d = int(counts[0])
    uniform = bool((counts == d).all())
    contiguous = bool((starts[1:] == ends[:-1]).all())
    if uniform and contiguous:
        rows = slice(int(starts[0]), int(ends[-1]))
        dev2d = tc.dev_idx[rows].reshape(-1, d)
        same_devs = bool((dev2d == dev2d[0]).all())
        if same_devs:
            vals = tc.values[rows, col].reshape(-1, d)
            mod = 1 << width
            if width < 64 and bool((vals >= mod).any()):
                # event_delta's range check, message included.
                raise ValueError(
                    f"counter value out of range for width {width}")
            # (last - first) mod 2**width == event_delta for every
            # branch of its single-rollover correction; u8 subtraction
            # wraps mod 2**64 natively.
            deltas = vals[1:] - vals[:-1]
            if width < 64:
                deltas &= np.uint64(mod - 1)
            # Exact integer total: each delta < 2**width and the bench
            # corpus is far from 2**64 aggregate, but keep Python ints
            # to make overflow impossible rather than unlikely.
            total = int(np.sum(deltas, dtype=object))
            return total * scale / seconds
    # Fallback: generic inner loop over per-block dicts (rare shapes).
    total = 0
    prev = None
    for b in bidx.tolist():
        s, e = tc.seg[b], tc.seg[b + 1]
        cur = dict(zip(tc.dev_idx[s:e].tolist(),
                       tc.values[s:e, col].tolist()))
        if prev is not None:
            for dev, v_cur in cur.items():
                v_prev = prev.get(dev)
                if v_prev is None:
                    return None
                total += event_delta(v_prev, v_cur, width)
        prev = cur
    return total * scale / seconds


def _gauge_stats(ch: ColumnarHost, bidx, type_name: str, key: str,
                 agg_devices: str = "sum") -> tuple[float, float] | None:
    """Columnar :func:`summarize._gauge_stats` ((time-mean, max))."""
    tc = ch.types.get(type_name)
    if tc is None:
        return None
    try:
        col = tc.schema.index_of(key)
    except KeyError:
        return None
    starts = tc.seg[bidx]
    ends = tc.seg[bidx + 1]
    counts = ends - starts
    have = counts > 0
    if not have.any():
        return None
    d = int(counts[have][0])
    if bool((counts == d).all()) and bool(
            (starts[1:] == ends[:-1]).all()):
        # Uniform device count, contiguous rows: one reshape, one
        # axis-reduction.  Summing along the last axis of a contiguous
        # f8 array applies the same pairwise reduction to the same
        # values in the same order as the dict path's per-block
        # ``np.array([...]).sum()``.
        per = tc.values[int(starts[0]):int(ends[-1]), col] \
            .reshape(-1, d).astype(np.float64)
        arr = per.sum(axis=1) if agg_devices == "sum" else per.mean(axis=1)
    else:
        vals = []
        for b in bidx.tolist():
            s, e = int(tc.seg[b]), int(tc.seg[b + 1])
            if e == s:
                continue
            per_dev = tc.values[s:e, col].astype(np.float64)
            vals.append(per_dev.sum() if agg_devices == "sum"
                        else per_dev.mean())
        arr = np.asarray(vals)
    return float(arr.mean()), float(arr.max())


_AMD_CODES = np.array(sorted(set(AMD64_EVENT_CODES.values())),
                      dtype=np.uint64)
_INTEL_CODES = np.array(sorted(set(INTEL_EVENT_CODES.values())),
                        dtype=np.uint64)


def _pmc_is_foreign(ch: ColumnarHost, bidx) -> bool:
    """Columnar :func:`summarize._pmc_is_foreign` (pure boolean)."""
    for type_name, codes in (("amd64_pmc", _AMD_CODES),
                             ("intel_pmc", _INTEL_CODES)):
        tc = ch.types.get(type_name)
        if tc is None:
            continue
        ctl_cols = [i for i, e in enumerate(tc.schema.entries)
                    if e.key.startswith("ctl")]
        if not ctl_cols:
            continue
        starts = tc.seg[bidx]
        ends = tc.seg[bidx + 1]
        if bool((starts[1:] == ends[:-1]).all()):
            ctl = tc.values[int(starts[0]):int(ends[-1])][:, ctl_cols]
        else:
            parts = [tc.values[int(s):int(e), :][:, ctl_cols]
                     for s, e in zip(starts, ends) if e > s]
            if not parts:
                continue
            ctl = np.concatenate(parts)
        if ctl.size and not bool(np.isin(ctl, codes).all()):
            return True
    return False


def _flops_rate(ch: ColumnarHost, bidx, seconds: float) -> float | None:
    """Columnar :func:`summarize._flops_rate`."""
    if "amd64_pmc" in ch.schemas:
        rate = _delta_rate(ch, bidx, "amd64_pmc", "ctr0", 1.0, seconds)
        if rate is None:
            return None
        return rate / 1e9
    if "intel_pmc" in ch.schemas:
        rate = _delta_rate(ch, bidx, "intel_pmc", "ctr0", 1.0, seconds)
        if rate is None:
            return None
        return rate / FP_OVERCOUNT / 1e9
    return None


def _host_partial(ch: ColumnarHost, jobid: str,
                  bidx: np.ndarray) -> HostJobPartial | None:
    """Columnar :func:`summarize._host_partial` — same metrics, same
    None conditions, same float operations in the same order."""
    if len(bidx) < 2:
        return None
    seconds = ch.times[int(bidx[-1])] - ch.times[int(bidx[0])]
    if seconds <= 0:
        return None
    h: dict[str, float] = {}
    poisoned: tuple[str, ...] = ()

    parts = {}
    for key in ("user", "system", "idle", "iowait", "irq", "softirq",
                "nice"):
        r = _delta_rate(ch, bidx, "cpu", key, 1.0, seconds)
        if r is None:
            parts = None
            break
        parts[key] = r
    if parts is not None:
        total = sum(parts.values())
        if total > 0:
            h["cpu_idle"] = parts["idle"] / total
            h["cpu_user"] = (parts["user"] + parts["nice"]) / total
            h["cpu_sys"] = (
                parts["system"] + parts["irq"] + parts["softirq"]
            ) / total

    if _pmc_is_foreign(ch, bidx):
        poisoned = ("cpu_flops",)
    else:
        flops = _flops_rate(ch, bidx, seconds)
        if flops is not None:
            h["cpu_flops"] = flops

    mem = _gauge_stats(ch, bidx, "mem", "MemUsed", "sum")
    if mem is not None:
        h["mem_used"] = mem[0] * KB / GB
        h["mem_used_max"] = mem[1] * KB / GB

    for mount in ("scratch", "work", "share"):
        for op, key in (("write", "write_bytes"), ("read", "read_bytes")):
            rate = _mount_delta_rate(ch, bidx, "llite", mount, key,
                                     seconds)
            if rate is None and mount == "share":
                rate = _delta_rate(ch, bidx, "nfs", key, 1.0, seconds)
            if rate is not None:
                h[f"io_{mount}_{op}"] = rate / 1e6

    for direction, key in (("tx", "port_xmit_data"),
                           ("rx", "port_rcv_data")):
        rate = _chained_delta_rate(ch, bidx, "ib", key, 4.0, seconds)
        if rate is not None:
            h[f"net_ib_{direction}"] = rate / 1e6

    for direction, key in (("tx", "tx_bytes"), ("rx", "rx_bytes")):
        rate = _delta_rate(ch, bidx, "lnet", key, 1.0, seconds)
        if rate is not None:
            h[f"net_lnet_{direction}"] = rate / 1e6

    return HostJobPartial(
        hostname=ch.hostname,
        jobid=jobid,
        metrics=h,
        poisoned=poisoned,
        n_blocks=len(bidx),
        seconds=seconds,
    )


# ---------------------------------------------------------------------------
# Scan assembly (views + partials), mirroring scan_host_data.
# ---------------------------------------------------------------------------


def columnar_views(ch: ColumnarHost) -> dict[str, HostJobView]:
    """Columnar :func:`matcher.host_job_views`."""
    span_first: dict[str, float] = {}
    span_last: dict[str, float] = {}
    for t, jids in zip(ch.times, ch.jobids):
        for jid in jids:
            if jid not in span_first:
                span_first[jid] = t
            span_last[jid] = t
    seen = {m.jobid for m in ch.marks}
    seen.update(span_first)
    out: dict[str, HostJobView] = {}
    for jid in seen:
        span = ((span_first[jid], span_last[jid])
                if jid in span_first else None)
        out[jid] = HostJobView(
            hostname=ch.hostname,
            jobid=jid,
            mark_window=ch.job_window(jid),
            block_span=span,
        )
    return out


def columnar_partials(ch: ColumnarHost) -> dict[str, HostJobPartial]:
    """Columnar :func:`summarize.host_job_partials`."""
    by_job: dict[str, list[int]] = {}
    for bi, jids in enumerate(ch.jobids):
        for jid in jids:
            by_job.setdefault(jid, []).append(bi)
    out: dict[str, HostJobPartial] = {}
    for jid, blocks in by_job.items():
        partial = _host_partial(ch, jid, np.asarray(blocks,
                                                    dtype=np.int64))
        if partial is not None:
            out[jid] = partial
    return out


def scan_v2_host(archive, hostname: str,
                 allow_truncated: bool = False,
                 policy: str = ErrorPolicy.STRICT,
                 days=None,
                 ) -> tuple["object", tuple[QuarantinedRecord, ...],
                            str] | None:
    """Scan one host's v2 day files without ever building HostData.

    The columnar equivalent of ``read_host_checked`` + ``scan_host_data``:
    the same per-file outcomes (unreadable / empty / hostname-mismatch /
    schema-drift quarantine, identical record kinds and error strings),
    the same strict-mode exceptions (:class:`V2FormatError` for a corrupt
    file, ``ValueError`` for merge conflicts, ``FileNotFoundError`` for
    an unknown host), and a byte-identical warehouse downstream.

    Returns ``(HostScan | None, records, status)``, or ``None`` when the
    host needs the generic path — any non-v2 file in the mix, or a
    cross-file ordering the concatenation invariants cannot express
    (the generic merge sorts; this path does not).

    *allow_truncated* is accepted for signature parity; a truncated v2
    file is detected by its missing footer and handled by the policy
    like any other corruption.
    """
    del allow_truncated  # v2 truncation == corruption; policy handles it
    from repro.ingest.parallel import HostScan

    files = archive.host_files(hostname, days=days)
    if not files:
        raise FileNotFoundError(f"no archived files for {hostname}")
    if not all(is_v2_path(p) for p in files):
        return None

    policy = ErrorPolicy(policy)
    records: list[QuarantinedRecord] = []
    kept: list[V2HostDay] = []
    schemas: dict[str, TypeSchema] = {}
    base_hostname: str | None = None
    with span("ingest.parse", host=hostname):
        for path in files:
            if policy is ErrorPolicy.STRICT:
                day = read_host_day(path)  # V2FormatError propagates
            else:
                try:
                    day = read_host_day(path)
                except (ParseError, OSError, UnicodeDecodeError) as e:
                    records.append(QuarantinedRecord(
                        hostname=hostname, path=str(path), lineno=None,
                        kind="unreadable_file",
                        error=f"{type(e).__name__}: {e}",
                    ))
                    continue
            name = day.hostname
            if not name:
                continue  # fully empty file (node down all day)
            if policy is ErrorPolicy.STRICT:
                # read_host merges onto the first non-empty file's
                # claimed hostname and raises on a later mismatch.
                if base_hostname is None:
                    base_hostname = name
                elif name != base_hostname:
                    raise ValueError(
                        f"cannot merge {name} into {base_hostname}")
            elif name != hostname:
                records.append(QuarantinedRecord(
                    hostname=hostname, path=str(path), lineno=None,
                    kind="hostname_mismatch",
                    error=f"file claims hostname {name!r}",
                ))
                continue
            scan_hostname = (base_hostname
                             if base_hostname is not None else hostname)
            drift = None
            for t in day.types:
                prev = schemas.get(t.name)
                if prev is not None and prev != t.schema:
                    drift = t.name
                    break
            if drift is not None:
                if policy is ErrorPolicy.STRICT:
                    raise ValueError(
                        f"schema drift for type {drift} on {scan_hostname}")
                records.append(QuarantinedRecord(
                    hostname=hostname, path=str(path), lineno=None,
                    kind="unmergeable_file",
                    error=f"schema drift for type {drift} "
                          f"on {scan_hostname}",
                ))
                continue
            for t in day.types:
                schemas.setdefault(t.name, t.schema)
            kept.append(day)

    scan_hostname = base_hostname if base_hostname is not None else hostname
    ch = build_columnar_host(scan_hostname, kept)
    if ch is None:
        return None  # concatenation invariant broken: generic path

    if policy is ErrorPolicy.QUARANTINE and records:
        return (None, tuple(records), "dropped")
    scan = HostScan(
        hostname=ch.hostname,
        views=tuple(columnar_views(ch).values()),
        partials=columnar_partials(ch),
    )
    return (scan, tuple(records), "degraded" if records else "ok")
