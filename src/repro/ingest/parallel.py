"""Parallel host-scan fan-out for the ingest engine.

Parsing dominates ingest cost (>90 % of wall time profiles to the text
parser), and host files are independent, so the natural unit of
parallelism is one *host*: a worker process reads and parses the host's
archived files itself (only the archive root and hostname cross the
process boundary going in) and ships back a :class:`HostScan` — the
host's per-job matcher views plus per-job metric partials.  Scans are a
few KB regardless of file size, so the expensive parsed
:class:`~repro.tacc_stats.types.HostData` never gets pickled.

Determinism: hosts are scanned in sorted hostname order; the parallel
path buffers its per-host results and replays them in that same order,
so the coordinator observes the exact sequence the serial path produces
— the warehouse contents are byte-identical for any worker count.

Fault tolerance: the fan-out survives the failure modes a facility-scale
ingest actually hits.  Malformed host data is handled by the
:class:`~repro.errors.ErrorPolicy` threaded into each worker (see
:meth:`HostArchive.read_host_checked`), while *transient* worker death
(an OOM-killed child takes the whole pool down as
``BrokenProcessPool``) and per-round timeouts are retried with
exponential backoff.  Because a broken pool cannot name the culprit,
failed hosts are charged an attempt collectively; a host that exhausts
its retries gets one final *isolation probe* in a fresh single-worker
pool, so an innocent host that kept sharing rounds with a crasher is
never falsely dropped.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import (
    ErrorPolicy,
    HostScanError,
    IngestHealth,
    QuarantinedRecord,
)
from repro.ingest.matcher import HostJobView, host_job_views
from repro.ingest.summarize import HostJobPartial, host_job_partials
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.types import HostData
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    get_registry,
    use_registry,
)
from repro.telemetry.trace import Tracer, use_tracer

__all__ = ["HostScan", "HostScanResult", "effective_workers",
           "scan_archive", "scan_host_data"]

#: Longest backoff between retry rounds, whatever the exponent says.
_MAX_BACKOFF = 2.0

_log = get_logger("ingest.parallel")


@dataclass(frozen=True)
class HostScan:
    """Everything downstream ingest needs from one host's stream.

    ``views`` feed the accounting matcher; ``partials`` (keyed by jobid)
    feed the per-job merge.  Both are small and picklable.
    """

    hostname: str
    views: tuple[HostJobView, ...]
    partials: dict[str, HostJobPartial]


@dataclass(frozen=True)
class HostScanResult:
    """One worker's structured outcome for one host.

    ``scan`` is ``None`` when the host was dropped (quarantine policy or
    unsalvageable data); ``records`` carries the quarantine provenance
    and ``status`` is ``"ok"`` / ``"degraded"`` / ``"dropped"`` as in
    :class:`~repro.tacc_stats.archive.HostReadResult`.  ``metrics`` is
    the worker-local telemetry snapshot for this host's scan (parse
    counters, scan timing); the coordinator folds it into the ambient
    registry so fan-out runs report the same totals as serial ones.
    """

    hostname: str
    scan: HostScan | None
    records: tuple[QuarantinedRecord, ...]
    status: str
    metrics: MetricsSnapshot | None = None


def scan_host_data(host: HostData) -> HostScan:
    """The map step for one already-parsed host."""
    return HostScan(
        hostname=host.hostname,
        views=tuple(host_job_views(host).values()),
        partials=host_job_partials(host),
    )


def _scan_host_checked(archive: HostArchive, hostname: str,
                       allow_truncated: bool, policy: str,
                       days: tuple[str, ...] | None = None) -> HostScanResult:
    """Read + scan one host inside a private metrics registry.

    Both the serial fast path and the pool worker route through this
    helper, so each host's parse counters and scan timing accumulate in
    a fresh local registry whose snapshot rides the result back to the
    coordinator.  That shared construction is what makes serial and
    parallel runs merge to identical metric totals.
    """
    local = MetricsRegistry()
    # Fresh tracer too: pool workers are reused across hosts, so spans
    # opened here must not pile up in a long-lived ambient tree — and
    # keeping the serial path identical means serial and parallel runs
    # produce the same trace shape (per-host timing travels as metrics).
    from repro.ingest.columnar_scan import scan_v2_host

    with use_registry(local), use_tracer(Tracer()):
        t0 = time.perf_counter()
        # Columnar fast path: hosts archived entirely as v2 files are
        # scanned straight from the mapped column chunks (same views,
        # same partials, same quarantine records — see columnar_scan).
        fast = scan_v2_host(archive, hostname,
                            allow_truncated=allow_truncated,
                            policy=policy, days=days)
        if fast is not None:
            scan, records, status = fast
        else:
            result = archive.read_host_checked(
                hostname, allow_truncated=allow_truncated,
                policy=policy, days=days)
            scan = (scan_host_data(result.data)
                    if result.data is not None else None)
            records, status = result.records, result.status
        elapsed = time.perf_counter() - t0
        local.histogram("ingest.host_scan.seconds").observe(elapsed)
        local.gauge(f"ingest.host_scan.{hostname}.seconds").set(elapsed)
    return HostScanResult(hostname=hostname, scan=scan,
                          records=records, status=status,
                          metrics=local.snapshot())


def _scan_one(root: str, hostname: str, allow_truncated: bool,
              policy: str = ErrorPolicy.STRICT,
              days: tuple[str, ...] | None = None) -> HostScanResult:
    """Worker entry point: read, parse and scan one host by name.

    Module-level (not a closure) so it pickles under the ``spawn`` start
    method as well as ``fork``.  Under the ``strict`` policy a malformed
    host raises (the error crosses back through the future); otherwise
    malformed data is quarantined per the policy and reported in the
    result.  *days* restricts the read to those host-day files (the
    delta-ingest path).
    """
    return _scan_host_checked(HostArchive(root), hostname,
                              allow_truncated, policy, days=days)


def effective_workers(workers: int, n_hosts: int,
                      oversubscribe: bool = False) -> int:
    """The pool size actually worth running for a CPU-bound scan.

    The scan is parse-dominated, so processes beyond the visible CPU
    count only add scheduling contention — the requested *workers* is
    clamped to ``os.cpu_count()`` (and to the host count) unless
    *oversubscribe* asks for the literal figure, which is useful when
    the archive sits on high-latency storage and workers spend their
    time blocked on reads rather than parsing.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    limit = max(1, min(workers, n_hosts))
    if oversubscribe:
        return limit
    return min(limit, os.cpu_count() or 1)


def _record_outcome(health: IngestHealth | None, result: HostScanResult
                    ) -> None:
    """Fold one host's outcome into health and telemetry accounting.

    Runs on the coordinator in sorted-hostname order for serial and
    parallel paths alike, so even last-write-wins gauges merge
    deterministically.
    """
    registry = get_registry()
    if result.metrics is not None:
        registry.merge_snapshot(result.metrics)
    registry.counter(f"ingest.hosts_{result.status}").inc()
    if result.records:
        registry.counter("ingest.records_quarantined").inc(
            len(result.records))
    if result.status == "dropped":
        _log.warning("host_dropped", host=result.hostname,
                     records=len(result.records))
    if health is None:
        return
    if result.status == "ok":
        health.record_ok(result.hostname)
    elif result.status == "degraded":
        health.record_degraded(result.hostname, result.records)
    else:
        health.record_dropped(result.hostname, result.records)


def _run_round(scan_fn: Callable, root: str, hosts: list[str], workers: int,
               allow_truncated: bool, policy: str, timeout: float | None,
               results: dict[str, HostScanResult],
               days_map: dict[str, tuple[str, ...] | None] | None = None,
               ) -> dict[str, str]:
    """Submit one retry round to a fresh pool; return transient failures.

    Successful scans land in *results*.  Hosts whose future raised
    :class:`BrokenExecutor` (worker death poisons every unfinished
    future, so the culprit is unknowable) or missed the round *timeout*
    come back as ``{hostname: reason}``.  A deterministic exception from
    the scan itself (e.g. :class:`ParseError` under ``strict``) is
    re-raised — retrying cannot fix bad bytes.
    """
    failures: dict[str, str] = {}
    days_map = days_map or {}
    with ProcessPoolExecutor(max_workers=min(workers, len(hosts))) as ex:
        futures = {
            ex.submit(scan_fn, root, h, allow_truncated, policy,
                      days_map.get(h)): h
            for h in hosts
        }
        _done, not_done = wait(futures, timeout=timeout)
        if not_done:
            # Deadline missed (or the pool broke): kill the stragglers
            # so shutdown cannot hang on a wedged worker.
            for fut in not_done:
                fut.cancel()
            for proc in list(getattr(ex, "_processes", {}).values()):
                proc.terminate()
        for fut, hostname in futures.items():
            if fut in not_done:
                failures[hostname] = (
                    f"timeout: scan exceeded {timeout}s round deadline"
                )
                continue
            try:
                # A deterministic scan exception (e.g. ParseError under
                # strict) propagates from .result() — not retryable.
                results[hostname] = fut.result()
            except BrokenExecutor as e:
                failures[hostname] = (
                    f"worker died: {e or type(e).__name__}"
                )
    return failures


def _scan_parallel(scan_fn: Callable, root: str, hostnames: list[str],
                   workers: int, allow_truncated: bool, policy: str,
                   health: IngestHealth | None, max_retries: int,
                   retry_backoff: float, timeout: float | None,
                   days_map: dict[str, tuple[str, ...] | None] | None = None,
                   ) -> dict[str, HostScanResult]:
    """The retrying fan-out: scan every host, tolerating worker death.

    Runs rounds until every host has either a result or a definitive
    verdict.  A transient failure charges one attempt to every host that
    failed in the round (the pool cannot attribute the crash); a host
    over *max_retries* attempts gets a last isolation probe before the
    verdict, so crashers cannot take innocent hosts down with them.
    """
    results: dict[str, HostScanResult] = {}
    attempts = dict.fromkeys(hostnames, 0)
    pending = list(hostnames)
    round_no = 0
    while pending:
        failures = _run_round(scan_fn, root, pending, workers,
                              allow_truncated, policy, timeout, results,
                              days_map)
        if not failures:
            break
        retry: list[str] = []
        for hostname, reason in failures.items():
            attempts[hostname] += 1
            get_registry().counter("ingest.retries").inc()
            if health is not None:
                health.record_retry(hostname)
            _log.warning("host_retry", host=hostname,
                         attempt=attempts[hostname], reason=reason)
            if attempts[hostname] <= max_retries:
                retry.append(hostname)
                continue
            # Retries exhausted — but this host may only ever have
            # failed in company.  Give it one isolated round for a
            # definitive verdict.
            attempts[hostname] += 1
            get_registry().counter("ingest.retries").inc()
            if health is not None:
                health.record_retry(hostname)
            probe_failure = _run_round(
                scan_fn, root, [hostname], 1, allow_truncated, policy,
                timeout, results, days_map).get(hostname)
            if probe_failure is None:
                continue  # innocent: the probe produced its result
            if ErrorPolicy(policy) is ErrorPolicy.STRICT:
                raise HostScanError(hostname, attempts[hostname],
                                    probe_failure)
            drop = HostScanResult(
                hostname=hostname, scan=None, status="dropped",
                records=(QuarantinedRecord(
                    hostname=hostname, path=f"{root}/{hostname}",
                    lineno=None, kind="scan_failure", error=probe_failure,
                ),),
            )
            results[hostname] = drop
        pending = retry
        if pending:
            time.sleep(min(retry_backoff * (2 ** round_no), _MAX_BACKOFF))
            round_no += 1
    return results


def scan_archive(
    archive: HostArchive,
    workers: int = 1,
    allow_truncated: bool = False,
    oversubscribe: bool = False,
    policy: str = ErrorPolicy.STRICT,
    health: IngestHealth | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
    timeout: float | None = None,
    scan_fn: Callable | None = None,
    days_by_host: dict[str, tuple[str, ...]] | None = None,
) -> Iterator[HostScan]:
    """Yield one :class:`HostScan` per surviving host, in sorted order.

    An effective worker count of 1 (see :func:`effective_workers`) runs
    in-process (no executor, no pickling, nothing transient to retry);
    more fans the per-host work over a process pool with per-host retry
    (*max_retries* attempts beyond the first, exponential
    *retry_backoff*, optional per-round *timeout* seconds) while
    preserving the serial output order.

    *policy* decides what malformed host data does (see
    :class:`~repro.errors.ErrorPolicy`); dropped hosts yield nothing.
    Every outcome — ok, degraded, dropped, and retry counts — is folded
    into *health* when one is supplied.  *scan_fn* swaps the worker
    entry point (same signature as the default) and exists for the
    fault-injection harness to simulate crashing workers.

    *days_by_host* narrows the scan to a delta: only the named hosts
    are visited, and each reads just the listed ``YYYY-MM-DD`` files.
    Quarantine/retry semantics are identical to a full scan — the delta
    path reuses this exact fan-out.
    """
    if days_by_host is not None:
        hostnames = sorted(days_by_host)
        days_map: dict[str, tuple[str, ...] | None] = {
            h: tuple(sorted(days_by_host[h])) for h in hostnames
        }
    else:
        hostnames = archive.hostnames()
        days_map = {}
    workers = effective_workers(workers, len(hostnames), oversubscribe)
    if workers == 1 and scan_fn is None and timeout is None:
        for hostname in hostnames:
            outcome = _scan_host_checked(archive, hostname,
                                         allow_truncated, policy,
                                         days=days_map.get(hostname))
            _record_outcome(health, outcome)
            if outcome.scan is not None:
                yield outcome.scan
        return

    results = _scan_parallel(
        scan_fn or _scan_one, str(archive.root), hostnames, workers,
        allow_truncated, policy, health, max_retries, retry_backoff,
        timeout, days_map)
    for hostname in hostnames:
        outcome = results.get(hostname)
        if outcome is None:  # pragma: no cover - every host gets a verdict
            continue
        _record_outcome(health, outcome)
        if outcome.scan is not None:
            yield outcome.scan
