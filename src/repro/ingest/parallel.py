"""Parallel host-scan fan-out for the ingest engine.

Parsing dominates ingest cost (>90 % of wall time profiles to the text
parser), and host files are independent, so the natural unit of
parallelism is one *host*: a worker process reads and parses the host's
archived files itself (only the archive root and hostname cross the
process boundary going in) and ships back a :class:`HostScan` — the
host's per-job matcher views plus per-job metric partials.  Scans are a
few KB regardless of file size, so the expensive parsed
:class:`~repro.tacc_stats.types.HostData` never gets pickled.

Determinism: hosts are scanned in sorted hostname order and
``ProcessPoolExecutor.map`` yields results in submission order, so the
coordinator observes the exact sequence the serial path produces — the
warehouse contents are byte-identical for any worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import repeat
from typing import Iterator

from repro.ingest.matcher import HostJobView, host_job_views
from repro.ingest.summarize import HostJobPartial, host_job_partials
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.types import HostData

__all__ = ["HostScan", "effective_workers", "scan_archive",
           "scan_host_data"]


@dataclass(frozen=True)
class HostScan:
    """Everything downstream ingest needs from one host's stream.

    ``views`` feed the accounting matcher; ``partials`` (keyed by jobid)
    feed the per-job merge.  Both are small and picklable.
    """

    hostname: str
    views: tuple[HostJobView, ...]
    partials: dict[str, HostJobPartial]


def scan_host_data(host: HostData) -> HostScan:
    """The map step for one already-parsed host."""
    return HostScan(
        hostname=host.hostname,
        views=tuple(host_job_views(host).values()),
        partials=host_job_partials(host),
    )


def _scan_one(root: str, hostname: str, allow_truncated: bool) -> HostScan:
    """Worker entry point: read, parse and scan one host by name.

    Module-level (not a closure) so it pickles under the ``spawn`` start
    method as well as ``fork``.
    """
    archive = HostArchive(root)
    host = archive.read_host(hostname, allow_truncated=allow_truncated)
    return scan_host_data(host)


def effective_workers(workers: int, n_hosts: int,
                      oversubscribe: bool = False) -> int:
    """The pool size actually worth running for a CPU-bound scan.

    The scan is parse-dominated, so processes beyond the visible CPU
    count only add scheduling contention — the requested *workers* is
    clamped to ``os.cpu_count()`` (and to the host count) unless
    *oversubscribe* asks for the literal figure, which is useful when
    the archive sits on high-latency storage and workers spend their
    time blocked on reads rather than parsing.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    limit = max(1, min(workers, n_hosts))
    if oversubscribe:
        return limit
    return min(limit, os.cpu_count() or 1)


def scan_archive(
    archive: HostArchive,
    workers: int = 1,
    allow_truncated: bool = False,
    oversubscribe: bool = False,
) -> Iterator[HostScan]:
    """Yield one :class:`HostScan` per archived host, in sorted order.

    An effective worker count of 1 (see :func:`effective_workers`) runs
    in-process (no executor, no pickling); more fans the per-host work
    over a process pool while preserving the serial output order.
    Either way the scans stream: at most one host's parsed data is
    alive per worker.
    """
    hostnames = archive.hostnames()
    workers = effective_workers(workers, len(hostnames), oversubscribe)
    if workers == 1:
        for host in archive.iter_hosts(allow_truncated=allow_truncated):
            yield scan_host_data(host)
        return
    chunksize = max(1, len(hostnames) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as ex:
        yield from ex.map(
            _scan_one,
            repeat(str(archive.root)),
            hostnames,
            repeat(allow_truncated),
            chunksize=chunksize,
        )
