"""SQLite-backed data warehouse (Netezza/MySQL substitute).

Star-ish schema:

* ``systems`` — one row per cluster (capacity facts for normalization);
* ``jobs`` — the fact table: one row per completed job with its identity
  dimensions (user, account, science field, application, queue, exit) and
  node-hour facts;
* ``job_metrics`` — (jobid, metric, value) long-form per-job summaries;
* ``system_series`` — 10-minute system-level aggregates (active nodes,
  total FLOPS, memory per node, filesystem rates) feeding Figures 8-12
  and the persistence analysis;
* ``syslog_events`` — rationalized failure events for the ANCOR linkage.

The query layer (:mod:`repro.xdmod.query`) builds on this; everything here
is plain, parameterized SQL.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

import numpy as np

from repro.ingest.summarize import SUMMARY_METRICS, JobSummary
from repro.scheduler.job import JobRecord

__all__ = ["Warehouse", "JobRow"]

#: Bump when the SQL layout changes incompatibly; opening a file written
#: by a different layout fails loudly instead of misreading it.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE systems (
    name            TEXT PRIMARY KEY,
    num_nodes       INTEGER NOT NULL,
    cores_per_node  INTEGER NOT NULL,
    mem_gb_per_node REAL NOT NULL,
    peak_tflops     REAL NOT NULL,
    sample_interval REAL NOT NULL
);
CREATE TABLE jobs (
    system        TEXT NOT NULL REFERENCES systems(name),
    jobid         TEXT NOT NULL,
    user          TEXT NOT NULL,
    account       TEXT NOT NULL,
    science_field TEXT NOT NULL,
    app           TEXT NOT NULL,
    queue         TEXT NOT NULL,
    submit_time   REAL NOT NULL,
    start_time    REAL NOT NULL,
    end_time      REAL NOT NULL,
    nodes         INTEGER NOT NULL,
    cores         INTEGER NOT NULL,
    exit_status   TEXT NOT NULL,
    node_hours    REAL NOT NULL,
    PRIMARY KEY (system, jobid)
);
CREATE TABLE job_metrics (
    system TEXT NOT NULL,
    jobid  TEXT NOT NULL,
    metric TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (system, jobid, metric),
    FOREIGN KEY (system, jobid) REFERENCES jobs(system, jobid)
);
CREATE TABLE system_series (
    system TEXT NOT NULL,
    metric TEXT NOT NULL,
    t      REAL NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (system, metric, t)
);
CREATE TABLE syslog_events (
    system TEXT NOT NULL,
    t      REAL NOT NULL,
    host   TEXT NOT NULL,
    jobid  TEXT,
    kind   TEXT NOT NULL,
    severity TEXT NOT NULL
);
CREATE INDEX idx_jobs_user ON jobs(system, user);
CREATE INDEX idx_jobs_app ON jobs(system, app);
CREATE INDEX idx_jobs_field ON jobs(system, science_field);
CREATE INDEX idx_metrics_metric ON job_metrics(system, metric);
CREATE INDEX idx_syslog_job ON syslog_events(system, jobid);
"""


@dataclass(frozen=True)
class JobRow:
    """One row of the ``jobs`` fact table."""

    system: str
    jobid: str
    user: str
    account: str
    science_field: str
    app: str
    queue: str
    submit_time: float
    start_time: float
    end_time: float
    nodes: int
    cores: int
    exit_status: str
    node_hours: float


class Warehouse:
    """A warehouse instance (in-memory by default, or a file path)."""

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        have = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='jobs'"
        ).fetchone()
        if not have:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT INTO meta VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        else:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone() if self._has_table("meta") else None
            found = int(row[0]) if row else 0
            if found != SCHEMA_VERSION:
                self._conn.close()
                raise RuntimeError(
                    f"warehouse {path!r} has schema version {found}, this "
                    f"code expects {SCHEMA_VERSION}; re-run repro-simulate "
                    f"into a fresh file"
                )

    def _has_table(self, name: str) -> bool:
        return self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name=?",
            (name,),
        ).fetchone() is not None

    def close(self) -> None:
        self._conn.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """Escape hatch for custom reports (read-only use expected)."""
        return self._conn

    # -- loading ---------------------------------------------------------------

    def add_system(self, name: str, num_nodes: int, cores_per_node: int,
                   mem_gb_per_node: float, peak_tflops: float,
                   sample_interval: float) -> None:
        self._conn.execute(
            "INSERT INTO systems VALUES (?,?,?,?,?,?)",
            (name, num_nodes, cores_per_node, mem_gb_per_node, peak_tflops,
             sample_interval),
        )
        self._conn.commit()

    def add_job(self, system: str, record: JobRecord, cores_per_node: int,
                summary: JobSummary | None = None,
                app_override: str | None = None) -> None:
        """Insert one job fact (plus its metric summary if available)."""
        req = record.request
        self._conn.execute(
            "INSERT INTO jobs VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
            (
                system, req.jobid, req.user, req.account, req.science_field,
                app_override or req.app, req.queue, req.submit_time,
                record.start_time, record.end_time, req.nodes,
                req.nodes * cores_per_node, record.exit_status.value,
                record.node_hours,
            ),
        )
        if summary is not None:
            self.add_summary(system, summary)

    def add_summary(self, system: str, summary: JobSummary) -> None:
        self._conn.executemany(
            "INSERT INTO job_metrics VALUES (?,?,?,?)",
            [
                (system, summary.jobid, m, v)
                for m, v in summary.metrics.items()
            ],
        )

    def add_series(self, system: str, metric: str, times: np.ndarray,
                   values: np.ndarray) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.shape != v.shape:
            raise ValueError("times/values shape mismatch")
        self._conn.executemany(
            "INSERT INTO system_series VALUES (?,?,?,?)",
            [(system, metric, float(a), float(b)) for a, b in zip(t, v)],
        )

    def add_syslog_event(self, system: str, t: float, host: str,
                         jobid: str | None, kind: str, severity: str) -> None:
        self._conn.execute(
            "INSERT INTO syslog_events VALUES (?,?,?,?,?,?)",
            (system, t, host, jobid, kind, severity),
        )

    def commit(self) -> None:
        self._conn.commit()

    # -- reading ----------------------------------------------------------------

    def systems(self) -> list[str]:
        rows = self._conn.execute("SELECT name FROM systems ORDER BY name")
        return [r[0] for r in rows]

    def system_info(self, system: str) -> dict:
        row = self._conn.execute(
            "SELECT num_nodes, cores_per_node, mem_gb_per_node, peak_tflops,"
            " sample_interval FROM systems WHERE name=?", (system,)
        ).fetchone()
        if row is None:
            raise KeyError(f"unknown system {system!r}")
        keys = ("num_nodes", "cores_per_node", "mem_gb_per_node",
                "peak_tflops", "sample_interval")
        return dict(zip(keys, row))

    def job_count(self, system: str) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE system=?", (system,)
        ).fetchone()[0]

    def job_table(self, system: str,
                  metrics: tuple[str, ...] = SUMMARY_METRICS) -> dict[str, np.ndarray]:
        """The joined job+metrics table as column arrays.

        Jobs missing any requested metric are excluded (the paper's
        analyses operate on fully summarized jobs); object columns come
        back as numpy object arrays, numeric as float arrays.
        """
        cols = ["jobid", "user", "account", "science_field", "app", "queue",
                "submit_time", "start_time", "end_time", "nodes", "cores",
                "exit_status", "node_hours"]
        metric_selects = ", ".join(
            f"(SELECT value FROM job_metrics m WHERE m.system=j.system AND "
            f"m.jobid=j.jobid AND m.metric='{m}') AS {m}"
            for m in metrics
        )
        for m in metrics:
            if m not in SUMMARY_METRICS:
                raise ValueError(f"unknown metric {m!r}")
        sql = (
            f"SELECT {', '.join(cols)}"
            + (f", {metric_selects}" if metrics else "")
            + " FROM jobs j WHERE system=? ORDER BY jobid"
        )
        rows = self._conn.execute(sql, (system,)).fetchall()
        all_cols = cols + list(metrics)
        out: dict[str, np.ndarray] = {}
        data = list(zip(*rows)) if rows else [[] for _ in all_cols]
        for name, values in zip(all_cols, data):
            if name in ("jobid", "user", "account", "science_field", "app",
                        "queue", "exit_status"):
                out[name] = np.array(values, dtype=object)
            else:
                out[name] = np.array(
                    [np.nan if v is None else v for v in values], dtype=float
                )
        if metrics:
            keep = np.ones(len(rows), dtype=bool)
            for m in metrics:
                keep &= ~np.isnan(out[m])
            for name in all_cols:
                out[name] = out[name][keep]
        return out

    def series(self, system: str, metric: str) -> tuple[np.ndarray, np.ndarray]:
        rows = self._conn.execute(
            "SELECT t, value FROM system_series WHERE system=? AND metric=?"
            " ORDER BY t", (system, metric)
        ).fetchall()
        if not rows:
            raise KeyError(f"no series {metric!r} for system {system!r}")
        t, v = zip(*rows)
        return np.asarray(t), np.asarray(v)

    def series_metrics(self, system: str) -> list[str]:
        rows = self._conn.execute(
            "SELECT DISTINCT metric FROM system_series WHERE system=?"
            " ORDER BY metric", (system,)
        )
        return [r[0] for r in rows]

    def syslog_events(self, system: str, jobid: str | None = None) -> list[tuple]:
        if jobid is None:
            sql = ("SELECT t, host, jobid, kind, severity FROM syslog_events"
                   " WHERE system=? ORDER BY t")
            return self._conn.execute(sql, (system,)).fetchall()
        sql = ("SELECT t, host, jobid, kind, severity FROM syslog_events"
               " WHERE system=? AND jobid=? ORDER BY t")
        return self._conn.execute(sql, (system, jobid)).fetchall()
