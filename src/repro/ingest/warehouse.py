"""SQLite-backed data warehouse (Netezza/MySQL substitute).

Star-ish schema:

* ``systems`` — one row per cluster (capacity facts for normalization);
* ``jobs`` — the fact table: one row per completed job with its identity
  dimensions (user, account, science field, application, queue, exit) and
  node-hour facts;
* ``job_metrics`` — (jobid, metric, value) long-form per-job summaries;
* ``system_series`` — 10-minute system-level aggregates (active nodes,
  total FLOPS, memory per node, filesystem rates) feeding Figures 8-12
  and the persistence analysis;
* ``syslog_events`` — rationalized failure events for the ANCOR linkage.

The query layer (:mod:`repro.xdmod.query` on top of
:mod:`repro.xdmod.snapshot`) builds on this; everything here is plain,
parameterized SQL.

Write path: all ``add_*`` calls buffer their rows and are flushed to
SQLite with one ``executemany`` per table (jobs before job_metrics, so
foreign keys hold) — either when a buffer reaches ``_WRITE_BATCH`` rows,
before any read, or on :meth:`Warehouse.commit`.  Pass
``fast_writes=True`` to additionally enable WAL journaling with
``synchronous=NORMAL`` — a large speedup for file-backed ingest at the
cost of strict durability on power loss (never data corruption).

Generation stamp: the ``meta`` table carries a ``generation`` counter
that :meth:`commit` bumps whenever the commit actually wrote something.
:attr:`data_version` combines it with an in-process mutation counter;
the analytics snapshot layer uses it to invalidate its caches exactly
when the warehouse contents change.  The append-vs-rebuild change
state (destructive counter, per-system series epochs) is persisted
next to it under ``change_state``, so a long-lived reader adopting an
external commit (:meth:`Warehouse.reread_generation`) learns not just
*that* the file moved but *how*.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass

import numpy as np

from repro.ingest.summarize import SUMMARY_METRICS, JobSummary
from repro.scheduler.job import JobRecord
from repro.telemetry.metrics import get_registry

__all__ = ["Warehouse", "JobRow", "LedgerEntry"]

#: Bump when the SQL layout changes incompatibly; opening a file written
#: by a different layout fails loudly instead of misreading it.
SCHEMA_VERSION = 1

#: Buffered rows per table before an automatic executemany flush.
_WRITE_BATCH = 512

# Ledger of consumed archive host-days plus per-run row ranges.  Written
# with IF NOT EXISTS so it doubles as the on-open migration for files
# created before incremental ingest existed (same pattern as the
# covering index): older warehouses gain empty ledger tables and every
# archive-mode ingest from then on records what it consumed.
_LEDGER_SCHEMA = """
CREATE TABLE IF NOT EXISTS ingest_ledger (
    system   TEXT NOT NULL,
    host     TEXT NOT NULL,
    day      TEXT NOT NULL,
    sha256   TEXT NOT NULL,
    size     INTEGER NOT NULL,
    mtime_ns INTEGER NOT NULL,
    status   TEXT NOT NULL,
    run_id   TEXT NOT NULL,
    PRIMARY KEY (system, host, day)
);
CREATE TABLE IF NOT EXISTS ingest_runs (
    system     TEXT NOT NULL,
    run_id     TEXT NOT NULL,
    mode       TEXT NOT NULL,
    row_ranges TEXT NOT NULL,
    PRIMARY KEY (system, run_id)
);
"""

# Live-mode per-job cumulative counters: one row per (system, jobid,
# metric) holding the *latest* monotonic counter value and its sample
# time.  Deliberately outside the snapshot frame tables (jobs /
# job_metrics / system_series / syslog_events): live micro-batches
# upsert here at high cadence and readers (repro-top, /api/v1/live/*)
# go straight to SQL, so the columnar snapshot never rebuilds over it.
# Written with IF NOT EXISTS so it doubles as the on-open migration,
# same pattern as the ingest ledger.
_LIVE_SCHEMA = """
CREATE TABLE IF NOT EXISTS live_job_counters (
    system TEXT NOT NULL,
    jobid  TEXT NOT NULL,
    user   TEXT NOT NULL,
    app    TEXT NOT NULL,
    t      REAL NOT NULL,
    ended  INTEGER NOT NULL,
    metric TEXT NOT NULL,
    value  INTEGER NOT NULL,
    PRIMARY KEY (system, jobid, metric)
);
"""

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE systems (
    name            TEXT PRIMARY KEY,
    num_nodes       INTEGER NOT NULL,
    cores_per_node  INTEGER NOT NULL,
    mem_gb_per_node REAL NOT NULL,
    peak_tflops     REAL NOT NULL,
    sample_interval REAL NOT NULL
);
CREATE TABLE jobs (
    system        TEXT NOT NULL REFERENCES systems(name),
    jobid         TEXT NOT NULL,
    user          TEXT NOT NULL,
    account       TEXT NOT NULL,
    science_field TEXT NOT NULL,
    app           TEXT NOT NULL,
    queue         TEXT NOT NULL,
    submit_time   REAL NOT NULL,
    start_time    REAL NOT NULL,
    end_time      REAL NOT NULL,
    nodes         INTEGER NOT NULL,
    cores         INTEGER NOT NULL,
    exit_status   TEXT NOT NULL,
    node_hours    REAL NOT NULL,
    PRIMARY KEY (system, jobid)
);
CREATE TABLE job_metrics (
    system TEXT NOT NULL,
    jobid  TEXT NOT NULL,
    metric TEXT NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (system, jobid, metric),
    FOREIGN KEY (system, jobid) REFERENCES jobs(system, jobid)
);
CREATE TABLE system_series (
    system TEXT NOT NULL,
    metric TEXT NOT NULL,
    t      REAL NOT NULL,
    value  REAL NOT NULL,
    PRIMARY KEY (system, metric, t)
);
CREATE TABLE syslog_events (
    system TEXT NOT NULL,
    t      REAL NOT NULL,
    host   TEXT NOT NULL,
    jobid  TEXT,
    kind   TEXT NOT NULL,
    severity TEXT NOT NULL
);
CREATE INDEX idx_jobs_user ON jobs(system, user);
CREATE INDEX idx_jobs_app ON jobs(system, app);
CREATE INDEX idx_jobs_field ON jobs(system, science_field);
CREATE INDEX idx_metrics_metric ON job_metrics(system, metric);
CREATE INDEX idx_metrics_covering ON job_metrics(system, metric, jobid, value);
CREATE INDEX idx_syslog_job ON syslog_events(system, jobid);
""" + _LEDGER_SCHEMA + _LIVE_SCHEMA


@dataclass(frozen=True)
class LedgerEntry:
    """One consumed archive host-day, as recorded in ``ingest_ledger``.

    ``status`` mirrors the host's scan outcome when the file was
    consumed (``loaded`` / ``degraded`` / ``dropped``); ``run_id`` links
    to the ``ingest_runs`` row holding that run's appended row ranges.
    """

    host: str
    day: str
    sha256: str
    size: int
    mtime_ns: int
    status: str
    run_id: str


@dataclass(frozen=True)
class JobRow:
    """One row of the ``jobs`` fact table."""

    system: str
    jobid: str
    user: str
    account: str
    science_field: str
    app: str
    queue: str
    submit_time: float
    start_time: float
    end_time: float
    nodes: int
    cores: int
    exit_status: str
    node_hours: float


class Warehouse:
    """A warehouse instance (in-memory by default, or a file path)."""

    def __init__(self, path: str = ":memory:", fast_writes: bool = False,
                 threadsafe: bool = False):
        # threadsafe=True lets the connection be shared across threads
        # (the service layer's lazy snapshot loads run on worker
        # threads).  CPython builds SQLite in serialized mode, so the
        # shared handle itself is safe; the snapshot layer additionally
        # serializes its bulk scans behind a load lock.
        self._conn = sqlite3.connect(path, check_same_thread=not threadsafe)
        self._conn.execute("PRAGMA foreign_keys = ON")
        #: Where this warehouse lives (shard identity in a federation).
        self.path = path
        self.fast_writes = fast_writes
        if fast_writes:
            # WAL keeps readers unblocked during ingest and groups page
            # writes; synchronous=NORMAL skips the per-commit fsync (safe
            # against crashes, trades the last commit on power loss).
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        have = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='jobs'"
        ).fetchone()
        if not have:
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT INTO meta VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.execute("INSERT INTO meta VALUES ('generation', '0')")
            self._conn.commit()
        else:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone() if self._has_table("meta") else None
            found = int(row[0]) if row else 0
            if found != SCHEMA_VERSION:
                self._conn.close()
                raise RuntimeError(
                    f"warehouse {path!r} has schema version {found}, this "
                    f"code expects {SCHEMA_VERSION}; re-run repro-simulate "
                    f"into a fresh file"
                )
            try:
                # Files written before the covering index existed get it
                # on open; harmless no-op everywhere else.
                self._conn.execute(
                    "CREATE INDEX IF NOT EXISTS idx_metrics_covering "
                    "ON job_metrics(system, metric, jobid, value)"
                )
                # Same deal for the incremental-ingest ledger tables
                # and the live-mode counter table.
                self._conn.executescript(_LEDGER_SCHEMA)
                self._conn.executescript(_LIVE_SCHEMA)
            except sqlite3.OperationalError:
                pass  # read-only file: queries still work, just slower

        # Write buffers (flushed by executemany) and the change stamp.
        self._pending_jobs: list[tuple] = []
        self._pending_metrics: list[tuple] = []
        self._pending_series: list[tuple] = []
        self._pending_syslog: list[tuple] = []
        self._seen_job_keys: set[tuple[str, str]] = set()
        self._mutations = 0
        self._dirty = False
        # Append-vs-rebuild signals for the snapshot layer: pure inserts
        # leave ``_destructive`` alone (rowid watermarks describe the
        # delta exactly); anything that rewrites existing rows bumps it.
        # Series appends can update tail bins in place, so series carry
        # a per-system epoch instead of a rowid watermark.  Both are
        # seeded from the persisted copy (written by :meth:`commit`
        # next to the generation) so the counters are monotonic across
        # processes and :meth:`reread_generation` can tell an external
        # series rewrite from a pure append.
        self._destructive = 0
        self._series_epochs: dict[str, int] = {}
        persisted = self._read_change_state()
        if persisted is not None:
            self._destructive = persisted[0]
            self._series_epochs = persisted[1]
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='generation'"
        ).fetchone()
        self._generation = int(row[0]) if row else 0

    def _has_table(self, name: str) -> bool:
        return self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name=?",
            (name,),
        ).fetchone() is not None

    def close(self) -> None:
        self._conn.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """Escape hatch for custom reports (read-only use expected)."""
        self._flush()
        return self._conn

    # -- change tracking ---------------------------------------------------------

    @property
    def generation(self) -> int:
        """Persistent commit counter: bumped by every commit that wrote."""
        return self._generation

    @property
    def data_version(self) -> tuple[int, int]:
        """Changes exactly when the warehouse contents change (through
        this instance): ``(generation, uncommitted mutation count)``.
        The snapshot layer keys its caches on this."""
        return (self._generation, self._mutations)

    def _read_change_state(self) -> tuple[int, dict[str, int]] | None:
        """The persisted ``(destructive, series_epochs)`` pair written
        by :meth:`commit`, or ``None`` for files that predate it."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='change_state'"
        ).fetchone()
        if row is None:
            return None
        state = json.loads(row[0])
        return (int(state.get("destructive", 0)),
                {s: int(e) for s, e in
                 state.get("series_epochs", {}).items()})

    def reread_generation(self) -> int:
        """Re-read the persistent generation counter from the ``meta``
        table, adopting commits made by *other* processes.

        A long-lived reader (the service) watches one warehouse file
        while ingest runs elsewhere append to it.  Those commits bump
        the on-disk generation but not this instance's in-memory copy;
        calling this moves :attr:`data_version` so the snapshot layer
        notices and performs its usual O(delta) refresh off the rowid
        watermarks.  The persisted change-state rides along: an
        external series write or destructive commit moves the epochs /
        destructive counter too, so the snapshot layer reloads (or
        fully rebuilds for) exactly what the other process touched
        instead of delta-extending over rewritten rows.  Returns the
        (possibly updated) generation.
        """
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='generation'"
        ).fetchone()
        if row is None:
            return self._generation
        disk = int(row[0])
        if disk == self._generation:
            return self._generation
        self._generation = disk
        persisted = self._read_change_state()
        if persisted is None:
            # The commit came from code that predates the persisted
            # change-state: appends and rewrites are indistinguishable,
            # so force the conservative full rebuild.
            self._destructive += 1
        else:
            destructive, epochs = persisted
            # Element-wise max: the counters are monotonic and shared
            # (every process seeds from the persisted copy on open), so
            # max-merging adopts the writer's bumps without ever
            # rolling back this process's own.
            self._destructive = max(self._destructive, destructive)
            for system, epoch in epochs.items():
                self._series_epochs[system] = max(
                    self._series_epochs.get(system, 0), epoch)
        return self._generation

    def _mutated(self) -> None:
        self._mutations += 1
        self._dirty = True

    def mark_destructive(self) -> None:
        """Declare a non-append mutation (row rewrite/delete).

        The snapshot layer's delta refresh only extends its frozen
        arrays when nothing destructive happened since it was built;
        callers poking the raw :attr:`connection` for writes should call
        this so analytics fall back to a full rebuild.
        """
        self._destructive += 1
        self._mutated()

    def change_state(self) -> dict:
        """Append-vs-rebuild bookkeeping for the snapshot layer.

        Returns ``{"destructive": int, "series_epochs": {system: int}}``
        (copies — safe to hold across further writes).  Combined with
        per-table rowid watermarks this tells a snapshot exactly what an
        O(delta) refresh must reload.
        """
        return {
            "destructive": self._destructive,
            "series_epochs": dict(self._series_epochs),
        }

    def _max_rowid(self, table: str) -> int:
        """Current high-water rowid of *table* (0 when empty).

        Flushes first so buffered rows are visible; with an insert-only
        write path, rows above a recorded watermark are exactly the rows
        appended since it was taken.
        """
        if table not in ("jobs", "job_metrics", "system_series",
                         "syslog_events"):
            raise ValueError(f"unknown table {table!r}")
        self._flush()
        return self._conn.execute(
            f"SELECT COALESCE(MAX(rowid), 0) FROM {table}"
        ).fetchone()[0]

    # -- write buffering ---------------------------------------------------------

    def _flush(self) -> None:
        """Drain the write buffers with one executemany per table.

        Jobs land before their metric rows so the job_metrics foreign
        key holds within a single flush.
        """
        registry = get_registry()
        flushed = False
        if self._pending_jobs:
            rows, self._pending_jobs = self._pending_jobs, []
            self._conn.executemany(
                "INSERT INTO jobs VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?,?)", rows
            )
            registry.counter("warehouse.rows.jobs").inc(len(rows))
            flushed = True
        if self._pending_metrics:
            rows, self._pending_metrics = self._pending_metrics, []
            self._conn.executemany(
                "INSERT INTO job_metrics VALUES (?,?,?,?)", rows
            )
            registry.counter("warehouse.rows.job_metrics").inc(len(rows))
            flushed = True
        if self._pending_series:
            rows, self._pending_series = self._pending_series, []
            self._conn.executemany(
                "INSERT INTO system_series VALUES (?,?,?,?)", rows
            )
            registry.counter("warehouse.rows.system_series").inc(len(rows))
            flushed = True
        if self._pending_syslog:
            rows, self._pending_syslog = self._pending_syslog, []
            self._conn.executemany(
                "INSERT INTO syslog_events VALUES (?,?,?,?,?,?)", rows
            )
            registry.counter("warehouse.rows.syslog_events").inc(len(rows))
            flushed = True
        if flushed:
            registry.counter("warehouse.flushes").inc()

    # -- loading ---------------------------------------------------------------

    def add_system(self, name: str, num_nodes: int, cores_per_node: int,
                   mem_gb_per_node: float, peak_tflops: float,
                   sample_interval: float) -> None:
        self._conn.execute(
            "INSERT INTO systems VALUES (?,?,?,?,?,?)",
            (name, num_nodes, cores_per_node, mem_gb_per_node, peak_tflops,
             sample_interval),
        )
        self._mutated()
        self.commit()

    def add_job(self, system: str, record: JobRecord, cores_per_node: int,
                summary: JobSummary | None = None,
                app_override: str | None = None) -> None:
        """Insert one job fact (plus its metric summary if available)."""
        req = record.request
        key = (system, req.jobid)
        if key in self._seen_job_keys:
            # Same-session duplicates fail here, eagerly, exactly as the
            # unbuffered path did; cross-session duplicates still hit the
            # primary key at flush time.
            raise sqlite3.IntegrityError(
                f"UNIQUE constraint failed: jobs.system, jobs.jobid "
                f"({system!r}, {req.jobid!r})"
            )
        self._seen_job_keys.add(key)
        self._pending_jobs.append(
            (
                system, req.jobid, req.user, req.account, req.science_field,
                app_override or req.app, req.queue, req.submit_time,
                record.start_time, record.end_time, req.nodes,
                req.nodes * cores_per_node, record.exit_status.value,
                record.node_hours,
            )
        )
        self._mutated()
        if summary is not None:
            self.add_summary(system, summary)
        elif len(self._pending_jobs) >= _WRITE_BATCH:
            self._flush()

    def add_summary(self, system: str, summary: JobSummary) -> None:
        self._pending_metrics.extend(
            (system, summary.jobid, m, v) for m, v in summary.metrics.items()
        )
        self._mutated()
        if (len(self._pending_metrics) >= _WRITE_BATCH
                or len(self._pending_jobs) >= _WRITE_BATCH):
            self._flush()

    def add_series(self, system: str, metric: str, times: np.ndarray,
                   values: np.ndarray) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.shape != v.shape:
            raise ValueError("times/values shape mismatch")
        self._pending_series.extend(
            (system, metric, float(a), float(b)) for a, b in zip(t, v)
        )
        self._series_epochs[system] = self._series_epochs.get(system, 0) + 1
        self._mutated()
        if len(self._pending_series) >= _WRITE_BATCH:
            self._flush()

    def append_series(self, system: str, metric: str, times: np.ndarray,
                      values: np.ndarray) -> None:
        """Append series points, merging tail overlap deterministically.

        An incremental ingest recomputes the bins that straddle its
        watermark with strictly more data than the previous run had, so
        on a ``(system, metric, t)`` collision the incoming value wins
        (upsert).  Re-appending identical data is therefore idempotent,
        and K batched appends converge to the same rows as one one-shot
        ingest.
        """
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.shape != v.shape:
            raise ValueError("times/values shape mismatch")
        self._flush()  # keep plain inserts ahead of the upsert
        rows = [(system, metric, float(a), float(b)) for a, b in zip(t, v)]
        self._conn.executemany(
            "INSERT INTO system_series VALUES (?,?,?,?) "
            "ON CONFLICT(system, metric, t) DO UPDATE "
            "SET value = excluded.value", rows
        )
        get_registry().counter("warehouse.rows.system_series").inc(len(rows))
        self._series_epochs[system] = self._series_epochs.get(system, 0) + 1
        self._mutated()

    def add_syslog_event(self, system: str, t: float, host: str,
                         jobid: str | None, kind: str, severity: str) -> None:
        self._pending_syslog.append((system, t, host, jobid, kind, severity))
        self._mutated()
        if len(self._pending_syslog) >= _WRITE_BATCH:
            self._flush()

    def set_ingest_health(self, system: str, health) -> None:
        """Store a system's ingest-health accounting in the meta table.

        *health* is an :class:`~repro.errors.IngestHealth` (or anything
        with a ``to_dict()``); ``repro-diagnose --ingest-health`` reads
        it back with :meth:`ingest_health`, so operators can audit a
        degraded ingest from the warehouse alone, without the archive's
        sidecar report.
        """
        payload = json.dumps(health.to_dict(), sort_keys=True)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta VALUES (?, ?)",
            (f"ingest_health:{system}", payload),
        )
        self._mutated()

    def ingest_health(self, system: str) -> dict | None:
        """The stored ingest-health dict for *system*, or ``None``."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?",
            (f"ingest_health:{system}",),
        ).fetchone()
        return json.loads(row[0]) if row else None

    # -- ingest ledger -----------------------------------------------------------

    def ledger_map(self, system: str) -> dict[tuple[str, str], LedgerEntry]:
        """Every consumed host-day, keyed ``(host, day)``.

        Empty for warehouses that predate the ledger (read-only legacy
        files where the on-open migration could not run).
        """
        if not self._has_table("ingest_ledger"):
            return {}
        rows = self._conn.execute(
            "SELECT host, day, sha256, size, mtime_ns, status, run_id "
            "FROM ingest_ledger WHERE system=?", (system,)
        ).fetchall()
        return {(r[0], r[1]): LedgerEntry(*r) for r in rows}

    def record_ledger(self, system: str,
                      entries: list[LedgerEntry]) -> None:
        """Upsert consumed host-days (a re-consumed day replaces its row)."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO ingest_ledger VALUES (?,?,?,?,?,?,?,?)",
            [(system, e.host, e.day, e.sha256, e.size, e.mtime_ns,
              e.status, e.run_id) for e in entries],
        )
        self._mutated()

    def record_ingest_run(self, system: str, run_id: str, mode: str,
                          row_ranges: dict[str, tuple[int, int]]) -> None:
        """Record one ingest run's appended rowid ranges per table.

        ``row_ranges`` maps table name to the half-open ``(lo, hi]``
        rowid span the run appended, so an operator can attribute any
        warehouse row back to the run (and archive files) it came from.
        """
        self._conn.execute(
            "INSERT OR REPLACE INTO ingest_runs VALUES (?,?,?,?)",
            (system, run_id, mode,
             json.dumps({k: list(v) for k, v in row_ranges.items()},
                        sort_keys=True)),
        )
        self._mutated()

    # -- live counters -----------------------------------------------------------

    def record_live_counters(self, system: str,
                             rows: list[tuple]) -> None:
        """Upsert the latest live counter sample per job metric.

        *rows* are ``(jobid, user, app, t, ended, metric, value)``
        tuples; ``value`` is a cumulative monotonic counter (wrapped at
        the rate engine's counter width), ``t`` the facility time it
        was observed, ``ended`` whether the job has finished (its final
        counters; ``t`` stops advancing, so rate engines age it out).
        """
        self._conn.executemany(
            "INSERT INTO live_job_counters VALUES (?,?,?,?,?,?,?,?) "
            "ON CONFLICT(system, jobid, metric) DO UPDATE SET "
            "t = excluded.t, ended = excluded.ended, "
            "value = excluded.value",
            [(system, *row) for row in rows],
        )
        get_registry().counter("warehouse.rows.live_counters").inc(
            len(rows))
        self._mutated()

    def live_counters(self, system: str) -> list[dict]:
        """Every job's latest live counter samples, one dict per job:
        ``{"jobid", "user", "app", "t", "ended", "counters": {metric:
        value}}``, sorted by jobid.  Empty for warehouses that predate
        live mode (read-only legacy files skip the migration)."""
        if not self._has_table("live_job_counters"):
            return []
        rows = self._conn.execute(
            "SELECT jobid, user, app, t, ended, metric, value "
            "FROM live_job_counters WHERE system=? ORDER BY jobid, metric",
            (system,),
        ).fetchall()
        out: dict[str, dict] = {}
        for jobid, user, app, t, ended, metric, value in rows:
            job = out.setdefault(jobid, {
                "jobid": jobid, "user": user, "app": app,
                "t": t, "ended": bool(ended), "counters": {},
            })
            job["counters"][metric] = int(value)
            job["t"] = max(job["t"], t)
            job["ended"] = job["ended"] or bool(ended)
        return list(out.values())

    def live_high_water(self, system: str) -> float:
        """The newest live counter sample time for *system* (0.0 when
        none) — what the long-poll watch endpoint compares against."""
        if not self._has_table("live_job_counters"):
            return 0.0
        row = self._conn.execute(
            "SELECT COALESCE(MAX(t), 0.0) FROM live_job_counters "
            "WHERE system=?", (system,),
        ).fetchone()
        return float(row[0])

    def ingest_runs(self, system: str) -> list[dict]:
        """All recorded ingest runs for *system*, oldest first."""
        if not self._has_table("ingest_runs"):
            return []
        rows = self._conn.execute(
            "SELECT run_id, mode, row_ranges FROM ingest_runs "
            "WHERE system=? ORDER BY rowid", (system,)
        ).fetchall()
        return [{"run_id": r[0], "mode": r[1],
                 "row_ranges": json.loads(r[2])} for r in rows]

    def commit(self) -> None:
        self._flush()
        if self._dirty:
            self._generation += 1
            self._conn.execute(
                "INSERT OR REPLACE INTO meta VALUES ('generation', ?)",
                (str(self._generation),),
            )
            # Persist the change-state in the same transaction so a
            # reader in another process that adopts this generation
            # (reread_generation) also sees which systems' series moved
            # and whether anything destructive happened.
            self._conn.execute(
                "INSERT OR REPLACE INTO meta VALUES ('change_state', ?)",
                (json.dumps({"destructive": self._destructive,
                             "series_epochs": self._series_epochs},
                            sort_keys=True),),
            )
            self._dirty = False
        self._conn.commit()
        get_registry().counter("warehouse.commits").inc()

    # -- reading ----------------------------------------------------------------

    def systems(self) -> list[str]:
        self._flush()
        rows = self._conn.execute("SELECT name FROM systems ORDER BY name")
        return [r[0] for r in rows]

    def system_info(self, system: str) -> dict:
        self._flush()
        row = self._conn.execute(
            "SELECT num_nodes, cores_per_node, mem_gb_per_node, peak_tflops,"
            " sample_interval FROM systems WHERE name=?", (system,)
        ).fetchone()
        if row is None:
            raise KeyError(f"unknown system {system!r}")
        keys = ("num_nodes", "cores_per_node", "mem_gb_per_node",
                "peak_tflops", "sample_interval")
        return dict(zip(keys, row))

    def job_count(self, system: str) -> int:
        self._flush()
        return self._conn.execute(
            "SELECT COUNT(*) FROM jobs WHERE system=?", (system,)
        ).fetchone()[0]

    def job_ids(self, system: str) -> set[str]:
        """All loaded jobids for *system* — the append path's watermark."""
        self._flush()
        rows = self._conn.execute(
            "SELECT jobid FROM jobs WHERE system=?", (system,)
        ).fetchall()
        return {r[0] for r in rows}

    def job_table(self, system: str,
                  metrics: tuple[str, ...] = SUMMARY_METRICS) -> dict[str, np.ndarray]:
        """The joined job+metrics table as column arrays.

        Jobs missing any requested metric are excluded (the paper's
        analyses operate on fully summarized jobs); object columns come
        back as numpy object arrays, numeric as float arrays.

        This is the compatibility/per-call path; interactive analytics
        go through :class:`repro.xdmod.snapshot.WarehouseSnapshot`, which
        loads each system once per warehouse generation.
        """
        self._flush()
        cols = ["jobid", "user", "account", "science_field", "app", "queue",
                "submit_time", "start_time", "end_time", "nodes", "cores",
                "exit_status", "node_hours"]
        metric_selects = ", ".join(
            f"(SELECT value FROM job_metrics m WHERE m.system=j.system AND "
            f"m.jobid=j.jobid AND m.metric='{m}') AS {m}"
            for m in metrics
        )
        for m in metrics:
            if m not in SUMMARY_METRICS:
                raise ValueError(f"unknown metric {m!r}")
        sql = (
            f"SELECT {', '.join(cols)}"
            + (f", {metric_selects}" if metrics else "")
            + " FROM jobs j WHERE system=? ORDER BY jobid"
        )
        rows = self._conn.execute(sql, (system,)).fetchall()
        all_cols = cols + list(metrics)
        out: dict[str, np.ndarray] = {}
        data = list(zip(*rows)) if rows else [[] for _ in all_cols]
        for name, values in zip(all_cols, data):
            if name in ("jobid", "user", "account", "science_field", "app",
                        "queue", "exit_status"):
                out[name] = np.array(values, dtype=object)
            else:
                out[name] = np.array(
                    [np.nan if v is None else v for v in values], dtype=float
                )
        if metrics:
            keep = np.ones(len(rows), dtype=bool)
            for m in metrics:
                keep &= ~np.isnan(out[m])
            for name in all_cols:
                out[name] = out[name][keep]
        return out

    def series(self, system: str, metric: str) -> tuple[np.ndarray, np.ndarray]:
        self._flush()
        rows = self._conn.execute(
            "SELECT t, value FROM system_series WHERE system=? AND metric=?"
            " ORDER BY t", (system, metric)
        ).fetchall()
        if not rows:
            raise KeyError(f"no series {metric!r} for system {system!r}")
        t, v = zip(*rows)
        return np.asarray(t), np.asarray(v)

    def series_metrics(self, system: str) -> list[str]:
        self._flush()
        rows = self._conn.execute(
            "SELECT DISTINCT metric FROM system_series WHERE system=?"
            " ORDER BY metric", (system,)
        )
        return [r[0] for r in rows]

    def syslog_events(self, system: str, jobid: str | None = None) -> list[tuple]:
        self._flush()
        if jobid is None:
            sql = ("SELECT t, host, jobid, kind, severity FROM syslog_events"
                   " WHERE system=? ORDER BY t")
            return self._conn.execute(sql, (system,)).fetchall()
        sql = ("SELECT t, host, jobid, kind, severity FROM syslog_events"
               " WHERE system=? AND jobid=? ORDER BY t")
        return self._conn.execute(sql, (system, jobid)).fetchall()
