"""Ingest/ETL: raw TACC_Stats + accounting + Lariat → data warehouse.

This is the SUPReMM integration layer (paper Figure 1): match each
accounting record to the stats streams of the nodes it ran on, reduce the
counter data to one per-job metric summary (rollover-aware deltas for
events, means/maxima for gauges), attribute the job to an application
(accounting tag, falling back to Lariat's library fingerprint), and load
everything into a relational star schema.  The paper used an IBM Netezza
appliance plus MySQL; we substitute SQLite (see DESIGN.md).
"""

from repro.errors import (
    ErrorPolicy,
    HostScanError,
    IngestHealth,
    QuarantinedRecord,
)
from repro.ingest.matcher import (
    HostJobView,
    MatchedJob,
    MatchReport,
    ViewMatchedJob,
    host_job_views,
    match_job_views,
    match_jobs,
)
from repro.ingest.parallel import (
    HostScan,
    HostScanResult,
    effective_workers,
    scan_archive,
    scan_host_data,
)
from repro.ingest.pipeline import IngestPipeline, IngestReport
from repro.ingest.summarize import (
    SUMMARY_METRICS,
    HostJobPartial,
    JobSummary,
    SummaryError,
    host_job_partials,
    merge_job_partials,
    summarize_job_from_hosts,
    summarize_job_from_rates,
)
from repro.ingest.warehouse import Warehouse

__all__ = [
    "ErrorPolicy",
    "HostScanError",
    "IngestHealth",
    "QuarantinedRecord",
    "HostJobPartial",
    "JobSummary",
    "SummaryError",
    "SUMMARY_METRICS",
    "host_job_partials",
    "merge_job_partials",
    "summarize_job_from_hosts",
    "summarize_job_from_rates",
    "HostJobView",
    "MatchedJob",
    "MatchReport",
    "ViewMatchedJob",
    "host_job_views",
    "match_job_views",
    "match_jobs",
    "HostScan",
    "HostScanResult",
    "effective_workers",
    "scan_archive",
    "scan_host_data",
    "Warehouse",
    "IngestPipeline",
    "IngestReport",
]
