"""End-to-end ingest: the paper's Figure 1 workflow as code.

``accounting log + TACC_Stats archive + Lariat log + rationalized syslog
→ match → summarize → attribute → warehouse``

Application attribution prefers the accounting app tag and falls back to
Lariat's executable/library fingerprint (production accounting tags are
frequently missing or wrong — job names like ``run.sh`` — which is exactly
why Lariat exists).

The engine streams: hosts are scanned one at a time (per worker), each
scan reduced immediately to its per-job views and metric partials, and
the parsed host data dropped before the next host is read.  Matching and
warehouse loading then operate on those small reductions, with one
transaction per ``batch_size`` jobs.  Peak memory is therefore bounded
by the largest single host file plus the per-job partials — not by the
archive size — and ``workers>1`` fans the host scans over a process pool
(see :mod:`repro.ingest.parallel`) while keeping the warehouse contents
byte-identical to a serial run.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import FacilityConfig
from repro.errors import QUARANTINE_DIRNAME, ErrorPolicy, IngestHealth
from repro.ingest.matcher import HostJobView, MatchReport, match_job_views
from repro.ingest.parallel import (
    effective_workers,
    scan_archive,
    scan_host_data,
)
from repro.ingest.summarize import (
    HostJobPartial,
    SummaryError,
    merge_job_partials,
)
from repro.ingest.warehouse import Warehouse
from repro.lariat.records import LariatRecord
from repro.scheduler.accounting import AccountingEntry, parse_accounting
from repro.scheduler.job import JobRecord, JobRequest
from repro.syslogr.rationalizer import RationalizedMessage
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.types import HostData
from repro.telemetry.log import current_run_id, get_logger, run_scope
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import span

_log = get_logger("ingest.pipeline")

__all__ = ["IngestPipeline", "IngestReport"]


@dataclass
class IngestReport:
    """What one ingest pass accomplished.

    ``health`` carries the fault-tolerance accounting (hosts ok /
    degraded / dropped, quarantined records, retry counts) when the
    ingest read from an archive; ``summary_errors`` maps each failed
    job to the reason its summary could not be built.
    """

    system: str
    jobs_loaded: int = 0
    summaries_failed: list[str] = field(default_factory=list)
    summary_errors: dict[str, str] = field(default_factory=dict)
    lariat_attributed: int = 0
    unattributed: list[str] = field(default_factory=list)
    syslog_events_loaded: int = 0
    match: MatchReport | None = None
    health: IngestHealth | None = None
    effective_workers: int = 1
    run_id: str | None = None

    def __str__(self) -> str:
        m = self.match
        text = (
            f"[{self.system}] loaded={self.jobs_loaded} "
            f"matched={len(m.matched) if m else 0} "
            f"too_short={len(m.too_short) if m else 0} "
            f"no_stats={len(m.no_stats) if m else 0} "
            f"summary_failures={len(self.summaries_failed)} "
            f"lariat_attributed={self.lariat_attributed} "
            f"syslog={self.syslog_events_loaded}"
        )
        if self.health is not None:
            text += f" | {self.health}"
        return text


def _record_from_entry(entry: AccountingEntry, app: str) -> JobRecord:
    """Rebuild a JobRecord view of an accounting entry for warehouse load.

    Fields the accounting file does not carry (behaviour seed, intrinsic
    runtime) are filled with neutral values; the warehouse only persists
    what accounting knew.
    """
    request = JobRequest(
        jobid=entry.job_number,
        user=entry.owner,
        account=entry.account,
        science_field=entry.science_field,
        app=app,
        queue=entry.qname,
        submit_time=float(entry.submission_time),
        nodes=entry.granted_nodes,
        walltime_req=max(float(entry.wall_seconds), 1.0),
        runtime=max(float(entry.wall_seconds), 1.0),
    )
    return JobRecord(
        request=request,
        start_time=float(entry.start_time),
        end_time=float(entry.end_time),
        node_indices=tuple(range(entry.granted_nodes)),
        exit_status=entry.exit,
    )


class IngestPipeline:
    """Drives the full ETL for one system into a shared warehouse."""

    def __init__(self, warehouse: Warehouse):
        self.warehouse = warehouse

    def ingest(
        self,
        config: FacilityConfig,
        accounting_text: str,
        hosts: list[HostData] | None = None,
        archive: HostArchive | None = None,
        lariat_records: list[LariatRecord] | None = None,
        syslog: list[RationalizedMessage] | None = None,
        min_seconds: float | None = None,
        workers: int = 1,
        batch_size: int = 256,
        oversubscribe: bool = False,
        error_policy: str = ErrorPolicy.STRICT,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        scan_timeout: float | None = None,
        quarantine_dir: str | Path | None = None,
    ) -> IngestReport:
        """Run the pipeline.

        Provide either parsed *hosts* or an *archive* to read them from.
        *workers* fans per-host parsing and summarization over a process
        pool (archive path only — already-parsed *hosts* are reduced
        in-process; the count is clamped to the visible CPUs unless
        *oversubscribe*, see
        :func:`~repro.ingest.parallel.effective_workers`); any worker
        count produces a byte-identical warehouse.  *batch_size* caps
        the jobs per warehouse transaction.

        *error_policy* decides what malformed archive data does (see
        :class:`~repro.errors.ErrorPolicy`; already-parsed *hosts* have
        no files to quarantine, so it only applies to the archive path).
        Under a non-strict policy the report carries an
        :class:`~repro.errors.IngestHealth`, a sidecar quarantine report
        is written to *quarantine_dir* (default
        ``<archive root>/quarantine/``), and the same accounting is
        stored in the warehouse for ``repro-diagnose``.  *max_retries*,
        *retry_backoff* and *scan_timeout* tune the transient-failure
        retry in the process-pool fan-out.
        """
        if (hosts is None) == (archive is None):
            raise ValueError("provide exactly one of hosts= or archive=")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        # Reuse the CLI's run id when one is ambient; otherwise this
        # ingest is its own run and mints one.
        scope = (nullcontext(current_run_id()) if current_run_id()
                 else run_scope())
        with scope as run_id, span("ingest", system=config.name):
            report = self._ingest(
                config, accounting_text, hosts, archive, lariat_records,
                syslog, min_seconds, workers, batch_size, oversubscribe,
                error_policy, max_retries, retry_backoff, scan_timeout,
                quarantine_dir,
            )
            report.run_id = run_id
            _log.info("ingest_done", system=config.name,
                      jobs=report.jobs_loaded,
                      workers=report.effective_workers)
            return report

    def _ingest(
        self,
        config: FacilityConfig,
        accounting_text: str,
        hosts: list[HostData] | None,
        archive: HostArchive | None,
        lariat_records: list[LariatRecord] | None,
        syslog: list[RationalizedMessage] | None,
        min_seconds: float | None,
        workers: int,
        batch_size: int,
        oversubscribe: bool,
        error_policy: str,
        max_retries: int,
        retry_backoff: float,
        scan_timeout: float | None,
        quarantine_dir: str | Path | None,
    ) -> IngestReport:
        """The validated ingest body, run inside the run scope and the
        root ``ingest`` span (see :meth:`ingest` for parameter docs)."""
        policy = ErrorPolicy(error_policy)
        health: IngestHealth | None = None
        n_workers = 1
        if hosts is None:
            assert archive is not None
            health = IngestHealth(policy=policy.value)
            n_workers = effective_workers(
                workers, len(archive.hostnames()), oversubscribe)
            scans = scan_archive(archive, workers=workers,
                                 allow_truncated=True,
                                 oversubscribe=oversubscribe,
                                 policy=policy, health=health,
                                 max_retries=max_retries,
                                 retry_backoff=retry_backoff,
                                 timeout=scan_timeout)
        else:
            scans = (scan_host_data(h) for h in hosts)

        report = IngestReport(system=config.name, health=health,
                              effective_workers=n_workers)

        if config.name not in self.warehouse.systems():
            self.warehouse.add_system(
                config.name,
                num_nodes=config.num_nodes,
                cores_per_node=config.node.cores,
                mem_gb_per_node=config.node.memory_gb,
                peak_tflops=config.peak_tflops,
                sample_interval=config.sample_interval,
            )

        # Drain the scan stream: per-host parsed data dies inside the
        # generator; only views and partials accumulate here.
        views: list[HostJobView] = []
        partials_by_host: dict[str, dict[str, HostJobPartial]] = {}
        with span("ingest.scan", workers=n_workers):
            for scan in scans:
                views.extend(scan.views)
                partials_by_host[scan.hostname] = scan.partials

        if health is not None and policy is not ErrorPolicy.STRICT:
            # The scan stream is fully drained, so the health accounting
            # is complete: persist it where operators will look — the
            # sidecar next to the archive and the warehouse meta table.
            assert archive is not None
            sidecar = (Path(quarantine_dir) if quarantine_dir is not None
                       else archive.root / QUARANTINE_DIRNAME)
            health.write_sidecar(sidecar)
            self.warehouse.set_ingest_health(config.name, health)

        with span("ingest.match"):
            entries = list(parse_accounting(accounting_text))
            matched, match = match_job_views(
                entries, views,
                min_seconds=min_seconds if min_seconds is not None
                else config.sample_interval,
            )
        report.match = match

        lariat_by_job = {r.jobid: r for r in (lariat_records or [])}

        in_batch = 0
        with span("ingest.load"):
            for mj in matched:
                entry = mj.entry
                app = entry.app_tag
                if not app or app == "-":
                    lar = lariat_by_job.get(entry.job_number)
                    guess = lar.guess_app() if lar else None
                    if guess:
                        app = guess
                        report.lariat_attributed += 1
                    else:
                        app = "unknown"
                        report.unattributed.append(entry.job_number)
                job_partials = [
                    p for p in (
                        partials_by_host.get(n, {}).get(entry.job_number)
                        for n in mj.hostnames
                    ) if p is not None
                ]
                try:
                    summary = merge_job_partials(
                        entry.job_number, job_partials,
                        wall_seconds=float(entry.wall_seconds),
                    )
                except SummaryError as e:
                    # Narrow by design: SummaryError means the job had no
                    # usable stats (expected for short/degraded jobs) and
                    # is recorded with its reason.  Any other ValueError
                    # from the summarize layer is a real bug and
                    # propagates.
                    report.summaries_failed.append(entry.job_number)
                    report.summary_errors[entry.job_number] = str(e)
                    summary = None
                self.warehouse.add_job(
                    config.name,
                    _record_from_entry(entry, app),
                    cores_per_node=config.node.cores,
                    summary=summary,
                )
                report.jobs_loaded += 1
                in_batch += 1
                if in_batch >= batch_size:
                    self.warehouse.commit()
                    in_batch = 0

        with span("ingest.syslog"):
            for msg in syslog or []:
                self.warehouse.add_syslog_event(
                    config.name, msg.time, msg.host, msg.jobid,
                    msg.kind.value, msg.severity,
                )
                report.syslog_events_loaded += 1

        self.warehouse.commit()
        registry = get_registry()
        registry.counter("ingest.jobs_loaded").inc(report.jobs_loaded)
        registry.counter("ingest.summaries_failed").inc(
            len(report.summaries_failed))
        registry.counter("ingest.lariat_attributed").inc(
            report.lariat_attributed)
        registry.counter("ingest.syslog_events").inc(
            report.syslog_events_loaded)
        return report
