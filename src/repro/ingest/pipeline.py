"""End-to-end ingest: the paper's Figure 1 workflow as code.

``accounting log + TACC_Stats archive + Lariat log + rationalized syslog
→ match → summarize → attribute → warehouse``

Application attribution prefers the accounting app tag and falls back to
Lariat's executable/library fingerprint (production accounting tags are
frequently missing or wrong — job names like ``run.sh`` — which is exactly
why Lariat exists).

The engine streams: hosts are scanned one at a time (per worker), each
scan reduced immediately to its per-job views and metric partials, and
the parsed host data dropped before the next host is read.  Matching and
warehouse loading then operate on those small reductions, with one
transaction per ``batch_size`` jobs.  Peak memory is therefore bounded
by the largest single host file plus the per-job partials — not by the
archive size — and ``workers>1`` fans the host scans over a process pool
(see :mod:`repro.ingest.parallel`) while keeping the warehouse contents
byte-identical to a serial run.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.config import FacilityConfig
from repro.errors import QUARANTINE_DIRNAME, ErrorPolicy, IngestHealth
from repro.ingest.matcher import HostJobView, MatchReport, match_job_views
from repro.ingest.parallel import (
    effective_workers,
    scan_archive,
    scan_host_data,
)
from repro.ingest.summarize import (
    HostJobPartial,
    SummaryError,
    merge_job_partials,
)
from repro.ingest.warehouse import LedgerEntry, Warehouse
from repro.lariat.records import LariatRecord
from repro.scheduler.accounting import AccountingEntry, parse_accounting
from repro.scheduler.job import JobRecord, JobRequest
from repro.syslogr.rationalizer import RationalizedMessage
from repro.tacc_stats.archive import HostArchive
from repro.tacc_stats.types import HostData
from repro.telemetry.log import current_run_id, get_logger, run_scope
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import span
from repro.util.timeutil import DAY, label_to_period_index, period_label

_log = get_logger("ingest.pipeline")

__all__ = ["DeltaSummary", "IngestPipeline", "IngestReport"]


@dataclass
class DeltaSummary:
    """What an incremental (or day-windowed) ingest decided to touch.

    ``files_new`` were parsed because the ledger had never seen them;
    ``files_lookback`` are unchanged files re-parsed only because a
    still-unloaded job's day span crosses into them (the watermark-tail
    overlap); ``files_skipped`` were proven unchanged and never opened.
    ``jobs_deferred`` counts accounting entries left for a later append
    because their data extends beyond the days on disk.  The watermarks
    are facility seconds: syslog events in ``[before, after)`` were
    loaded by this run.
    """

    files_new: int = 0
    files_lookback: int = 0
    files_skipped: int = 0
    jobs_deferred: int = 0
    watermark_before: int = 0
    watermark_after: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form for the run manifest / JSON surfaces."""
        return asdict(self)

    def __str__(self) -> str:
        return (
            f"new={self.files_new} lookback={self.files_lookback} "
            f"skipped={self.files_skipped} deferred={self.jobs_deferred} "
            f"watermark={self.watermark_before}->{self.watermark_after}"
        )


@dataclass
class IngestReport:
    """What one ingest pass accomplished.

    ``health`` carries the fault-tolerance accounting (hosts ok /
    degraded / dropped, quarantined records, retry counts) when the
    ingest read from an archive; ``summary_errors`` maps each failed
    job to the reason its summary could not be built.
    """

    system: str
    jobs_loaded: int = 0
    summaries_failed: list[str] = field(default_factory=list)
    summary_errors: dict[str, str] = field(default_factory=dict)
    lariat_attributed: int = 0
    unattributed: list[str] = field(default_factory=list)
    syslog_events_loaded: int = 0
    match: MatchReport | None = None
    health: IngestHealth | None = None
    effective_workers: int = 1
    run_id: str | None = None
    mode: str = "full"
    delta: DeltaSummary | None = None

    def __str__(self) -> str:
        m = self.match
        text = (
            f"[{self.system}] loaded={self.jobs_loaded} "
            f"matched={len(m.matched) if m else 0} "
            f"too_short={len(m.too_short) if m else 0} "
            f"no_stats={len(m.no_stats) if m else 0} "
            f"summary_failures={len(self.summaries_failed)} "
            f"lariat_attributed={self.lariat_attributed} "
            f"syslog={self.syslog_events_loaded}"
        )
        if self.delta is not None:
            text += f" | {self.mode}: {self.delta}"
        if self.health is not None:
            text += f" | {self.health}"
        return text


def _record_from_entry(entry: AccountingEntry, app: str) -> JobRecord:
    """Rebuild a JobRecord view of an accounting entry for warehouse load.

    Fields the accounting file does not carry (behaviour seed, intrinsic
    runtime) are filled with neutral values; the warehouse only persists
    what accounting knew.
    """
    request = JobRequest(
        jobid=entry.job_number,
        user=entry.owner,
        account=entry.account,
        science_field=entry.science_field,
        app=app,
        queue=entry.qname,
        submit_time=float(entry.submission_time),
        nodes=entry.granted_nodes,
        walltime_req=max(float(entry.wall_seconds), 1.0),
        runtime=max(float(entry.wall_seconds), 1.0),
    )
    return JobRecord(
        request=request,
        start_time=float(entry.start_time),
        end_time=float(entry.end_time),
        node_indices=tuple(range(entry.granted_nodes)),
        exit_status=entry.exit,
    )


def _span_segments(entry: AccountingEntry,
                   period: int = DAY) -> tuple[int, int]:
    """Inclusive rotation-segment range an entry's stats blocks live in.

    The daemon routes a block at time ``t`` to the file for segment
    ``t // period`` (days under the default rotation), so a job's
    begin/periodic/end blocks span exactly
    ``segment(start_time) .. segment(end_time)``.
    """
    return (int(float(entry.start_time) // period),
            int(float(entry.end_time) // period))


def _archive_period(archive: HostArchive) -> int:
    """The archive's rotation period; days for anything that predates
    the ``rotate_seconds`` knob."""
    return int(getattr(archive, "rotate_seconds", DAY))


@dataclass
class _DeltaPlan:
    """Everything a ledger-driven ingest decided before scanning.

    The plan is computable up front because *consumption* is decided by
    the plan alone — a scanned file is ledgered whatever its scan
    outcome (a quarantined host-day is consumed too, with its status
    recorded), so watermarks and the load gate never depend on parse
    results.
    """

    days_by_host: dict[str, tuple[str, ...]]
    candidates: list[AccountingEntry]
    consumed_days: set[int]
    watermark_before: int
    watermark_after: int
    delta: DeltaSummary
    ledger_base: dict
    period: int = DAY

    def loadable(self, entry: AccountingEntry) -> bool:
        """True when no future archive file can change this job's match."""
        d0, d1 = _span_segments(entry, self.period)
        return all(d in self.consumed_days for d in range(d0, d1 + 1))


def _plan_append(archive: HostArchive, ledger: dict,
                 entries: list[AccountingEntry], loaded: set[str],
                 min_seconds: float) -> _DeltaPlan:
    """Classify archive files against the ledger and pick the delta.

    Incremental ingest follows the nightly-ETL watermark model: host-day
    files accumulate in day order and never change once written.  A
    ledgered file whose hash drifted (or vanished) violates that
    contract and raises — the remedy is a full re-ingest into a fresh
    warehouse, never a silent partial reload.

    Files parsed = every never-ledgered file, plus unchanged files that
    a still-unloaded job's day span reaches back into (the *lookback*
    tail).  A not-yet-loaded job is deferred while its span extends past
    the days on disk, and *finalized* (never revisited) once every file
    of its span was consumed by an earlier run.

    All of the "day" arithmetic actually runs at the archive's rotation
    period: a live archive cutting sub-day segments flows through the
    identical watermark/lookback/finalize logic, just with finer cells.
    """
    period = _archive_period(archive)
    manifest = archive.manifest()
    for key, led in ledger.items():
        fp = manifest.get(key)
        if fp is None:
            raise ValueError(
                f"append ingest: ledgered file {key[0]}/{key[1]} vanished "
                f"from the archive; the ledger no longer describes this "
                f"archive — re-ingest it in full into a fresh warehouse")
        if fp.sha256 != led.sha256:
            raise ValueError(
                f"append ingest: archived file {key[0]}/{key[1]} mutated "
                f"since it was ingested (content hash changed); append "
                f"mode only supports append-only archives — re-ingest in "
                f"full into a fresh warehouse")

    by_day: dict[str, list[tuple[str, str]]] = {}
    for cell in manifest:
        by_day.setdefault(cell[1], []).append(cell)
    day_indices = {day: label_to_period_index(day, period)
                   for day in by_day}
    max_present_day = max(day_indices.values(), default=-1)
    max_ledger_day = max(
        (label_to_period_index(day, period) for _h, day in ledger),
        default=-1)

    def consumed_before(d: int) -> bool:
        return all(cell in ledger
                   for cell in by_day.get(period_label(d, period), ()))

    delta = DeltaSummary()
    candidates: list[AccountingEntry] = []
    pending: list[AccountingEntry] = []
    for entry in entries:
        if entry.job_number in loaded:
            continue
        d0, d1 = _span_segments(entry, period)
        if d1 <= max_ledger_day and all(
                consumed_before(d) for d in range(d0, d1 + 1)):
            continue  # finalized: an earlier run saw everything it has
        if d1 > max_present_day:
            delta.jobs_deferred += 1  # its data hasn't arrived yet
            continue
        candidates.append(entry)
        if float(entry.wall_seconds) >= min_seconds:
            pending.append(entry)

    needed_days: set[str] = set()
    for entry in pending:
        d0, d1 = _span_segments(entry, period)
        needed_days.update(period_label(d, period)
                           for d in range(d0, d1 + 1))

    days_by_host: dict[str, set[str]] = {}
    for cell in manifest:
        host, day = cell
        if cell not in ledger:
            days_by_host.setdefault(host, set()).add(day)
            delta.files_new += 1
        elif day in needed_days:
            days_by_host.setdefault(host, set()).add(day)
            delta.files_lookback += 1
        else:
            delta.files_skipped += 1

    # A day with no file at all (facility dark, or simply beyond any
    # host's activity) is vacuously consumed — nothing can arrive for it
    # under the day-ordered arrival contract once later days exist.
    scanned = {(h, d) for h, days in days_by_host.items() for d in days}
    consumed_days: set[int] = set()
    for d in range(max_present_day + 1):
        cells = by_day.get(period_label(d, period), ())
        if all(c in ledger or c in scanned for c in cells):
            consumed_days.add(d)

    def watermark(limit: int, consumed) -> int:
        d = 0
        while d <= limit and consumed(d):
            d += 1
        return d * period

    delta.watermark_before = watermark(max_ledger_day, consumed_before)
    delta.watermark_after = watermark(
        max_present_day, lambda d: d in consumed_days)
    return _DeltaPlan(
        days_by_host={h: tuple(sorted(d)) for h, d in days_by_host.items()},
        candidates=candidates, consumed_days=consumed_days,
        watermark_before=delta.watermark_before,
        watermark_after=delta.watermark_after,
        delta=delta, ledger_base=manifest, period=period,
    )


def _plan_windowed(archive: HostArchive, entries: list[AccountingEntry],
                   through_day: int) -> _DeltaPlan:
    """A full ingest restricted to facility days ``0 .. through_day-1``.

    This is how a warehouse is seeded for later appends: only files (and
    accounting entries, and syslog events) strictly inside the window
    are consumed, and everything consumed is ledgered.  A job whose end
    block falls in day ``through_day`` or later is deferred whole — the
    append run re-parses its tail-overlap days via the lookback rule.
    """
    period = _archive_period(archive)
    # The CLI window stays day-granular; on a sub-day archive it simply
    # covers every whole segment inside those days.
    through_seg = (through_day * DAY) // period
    manifest = archive.manifest()
    delta = DeltaSummary()
    days_by_host: dict[str, set[str]] = {}
    for (host, day) in manifest:
        if label_to_period_index(day, period) < through_seg:
            days_by_host.setdefault(host, set()).add(day)
            delta.files_new += 1
        else:
            delta.files_skipped += 1
    consumed_days = set(range(through_seg))
    candidates = []
    for entry in entries:
        if _span_segments(entry, period)[1] < through_seg:
            candidates.append(entry)
        else:
            delta.jobs_deferred += 1
    delta.watermark_after = through_seg * period
    return _DeltaPlan(
        days_by_host={h: tuple(sorted(d)) for h, d in days_by_host.items()},
        candidates=candidates, consumed_days=consumed_days,
        watermark_before=0, watermark_after=delta.watermark_after,
        delta=delta, ledger_base=manifest, period=period,
    )


class IngestPipeline:
    """Drives the full ETL for one system into a shared warehouse."""

    def __init__(self, warehouse: Warehouse):
        self.warehouse = warehouse

    def ingest(
        self,
        config: FacilityConfig,
        accounting_text: str,
        hosts: list[HostData] | None = None,
        archive: HostArchive | None = None,
        lariat_records: list[LariatRecord] | None = None,
        syslog: list[RationalizedMessage] | None = None,
        min_seconds: float | None = None,
        workers: int = 1,
        batch_size: int = 256,
        oversubscribe: bool = False,
        error_policy: str = ErrorPolicy.STRICT,
        max_retries: int = 2,
        retry_backoff: float = 0.1,
        scan_timeout: float | None = None,
        quarantine_dir: str | Path | None = None,
        mode: str = "full",
        through_day: int | None = None,
    ) -> IngestReport:
        """Run the pipeline.

        Provide either parsed *hosts* or an *archive* to read them from.

        ``mode="append"`` (archive path only) is the incremental ETL:
        the archive manifest is diffed against the warehouse's ingest
        ledger, only new host-day files (plus the lookback tail of
        still-unloaded jobs) are parsed, and already-loaded rows are
        never touched.  It assumes day-ordered arrival into an
        append-only archive — a ledgered file that mutated or vanished
        raises.  *through_day* (archive path, ``mode="full"`` only)
        instead windows a full ingest to facility days
        ``0 .. through_day-1``, seeding the ledger so later appends can
        pick up where it stopped.  Every archive ingest records the
        consumed host-days in the ledger and its appended rowid ranges
        in ``ingest_runs``.
        *workers* fans per-host parsing and summarization over a process
        pool (archive path only — already-parsed *hosts* are reduced
        in-process; the count is clamped to the visible CPUs unless
        *oversubscribe*, see
        :func:`~repro.ingest.parallel.effective_workers`); any worker
        count produces a byte-identical warehouse.  *batch_size* caps
        the jobs per warehouse transaction.

        *error_policy* decides what malformed archive data does (see
        :class:`~repro.errors.ErrorPolicy`; already-parsed *hosts* have
        no files to quarantine, so it only applies to the archive path).
        Under a non-strict policy the report carries an
        :class:`~repro.errors.IngestHealth`, a sidecar quarantine report
        is written to *quarantine_dir* (default
        ``<archive root>/quarantine/``), and the same accounting is
        stored in the warehouse for ``repro-diagnose``.  *max_retries*,
        *retry_backoff* and *scan_timeout* tune the transient-failure
        retry in the process-pool fan-out.
        """
        if (hosts is None) == (archive is None):
            raise ValueError("provide exactly one of hosts= or archive=")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if mode not in ("full", "append"):
            raise ValueError(f"mode must be 'full' or 'append', got {mode!r}")
        if mode == "append" and archive is None:
            raise ValueError("mode='append' requires archive= (the ledger "
                             "tracks archive files, not parsed hosts)")
        if through_day is not None:
            if archive is None:
                raise ValueError("through_day= requires archive=")
            if mode != "full":
                raise ValueError("through_day= only windows a full ingest; "
                                 "append mode derives its window from the "
                                 "ledger")
            if through_day < 1:
                raise ValueError(
                    f"through_day must be >= 1, got {through_day}")
        # Reuse the CLI's run id when one is ambient; otherwise this
        # ingest is its own run and mints one.
        scope = (nullcontext(current_run_id()) if current_run_id()
                 else run_scope())
        with scope as run_id, span("ingest", system=config.name,
                                   mode=mode):
            report = self._ingest(
                config, accounting_text, hosts, archive, lariat_records,
                syslog, min_seconds, workers, batch_size, oversubscribe,
                error_policy, max_retries, retry_backoff, scan_timeout,
                quarantine_dir, mode, through_day,
            )
            report.run_id = run_id
            _log.info("ingest_done", system=config.name,
                      jobs=report.jobs_loaded,
                      workers=report.effective_workers)
            return report

    def _ingest(
        self,
        config: FacilityConfig,
        accounting_text: str,
        hosts: list[HostData] | None,
        archive: HostArchive | None,
        lariat_records: list[LariatRecord] | None,
        syslog: list[RationalizedMessage] | None,
        min_seconds: float | None,
        workers: int,
        batch_size: int,
        oversubscribe: bool,
        error_policy: str,
        max_retries: int,
        retry_backoff: float,
        scan_timeout: float | None,
        quarantine_dir: str | Path | None,
        mode: str,
        through_day: int | None,
    ) -> IngestReport:
        """The validated ingest body, run inside the run scope and the
        root ``ingest`` span (see :meth:`ingest` for parameter docs)."""
        policy = ErrorPolicy(error_policy)
        health: IngestHealth | None = None
        min_s = (min_seconds if min_seconds is not None
                 else config.sample_interval)
        plan: _DeltaPlan | None = None
        entries: list[AccountingEntry] | None = None
        n_workers = 1
        if hosts is None:
            assert archive is not None
            if mode == "append" or through_day is not None:
                # Plan modes parse the accounting up front: the entry
                # day spans decide which archive files must be opened.
                with span("ingest.plan", mode=mode):
                    entries = list(parse_accounting(accounting_text))
                    if mode == "append":
                        plan = _plan_append(
                            archive,
                            self.warehouse.ledger_map(config.name),
                            entries,
                            self.warehouse.job_ids(config.name),
                            min_s)
                    else:
                        plan = _plan_windowed(archive, entries,
                                              through_day)
                entries = plan.candidates
            scan_hosts = (sorted(plan.days_by_host) if plan is not None
                          else archive.hostnames())
            health = IngestHealth(policy=policy.value)
            n_workers = effective_workers(
                workers, len(scan_hosts), oversubscribe)
            scans = scan_archive(
                archive, workers=workers, allow_truncated=True,
                oversubscribe=oversubscribe, policy=policy, health=health,
                max_retries=max_retries, retry_backoff=retry_backoff,
                timeout=scan_timeout,
                days_by_host=plan.days_by_host if plan is not None
                else None)
        else:
            scans = (scan_host_data(h) for h in hosts)

        report = IngestReport(system=config.name, health=health,
                              effective_workers=n_workers,
                              mode=mode,
                              delta=plan.delta if plan is not None
                              else None)

        if config.name not in self.warehouse.systems():
            self.warehouse.add_system(
                config.name,
                num_nodes=config.num_nodes,
                cores_per_node=config.node.cores,
                mem_gb_per_node=config.node.memory_gb,
                peak_tflops=config.peak_tflops,
                sample_interval=config.sample_interval,
            )

        # Low-water rowids per table: with an insert-only load, rows
        # above these after the final commit are exactly what this run
        # appended (recorded in ingest_runs for provenance).
        _TABLES = ("jobs", "job_metrics", "system_series",
                   "syslog_events")
        row_lo = ({t: self.warehouse._max_rowid(t) for t in _TABLES}
                  if archive is not None else None)

        # Drain the scan stream: per-host parsed data dies inside the
        # generator; only views and partials accumulate here.
        views: list[HostJobView] = []
        partials_by_host: dict[str, dict[str, HostJobPartial]] = {}
        with span("ingest.scan", workers=n_workers):
            for scan in scans:
                views.extend(scan.views)
                partials_by_host[scan.hostname] = scan.partials

        if health is not None and policy is not ErrorPolicy.STRICT:
            # The scan stream is fully drained, so the health accounting
            # is complete: persist it where operators will look — the
            # sidecar next to the archive and the warehouse meta table.
            assert archive is not None
            sidecar = (Path(quarantine_dir) if quarantine_dir is not None
                       else archive.root / QUARANTINE_DIRNAME)
            health.write_sidecar(sidecar)
            self.warehouse.set_ingest_health(config.name, health)

        with span("ingest.match"):
            if entries is None:
                entries = list(parse_accounting(accounting_text))
            matched, match = match_job_views(entries, views,
                                             min_seconds=min_s)
        report.match = match

        lariat_by_job = {r.jobid: r for r in (lariat_records or [])}

        in_batch = 0
        with span("ingest.load"):
            for mj in matched:
                entry = mj.entry
                if plan is not None and not plan.loadable(entry):
                    # Safety net: a candidate's span days are always
                    # fully consumed by construction (new + lookback
                    # cover them), so this should never fire — but a
                    # deferred load is recoverable, a premature one is
                    # not.
                    plan.delta.jobs_deferred += 1
                    continue
                app = entry.app_tag
                if not app or app == "-":
                    lar = lariat_by_job.get(entry.job_number)
                    guess = lar.guess_app() if lar else None
                    if guess:
                        app = guess
                        report.lariat_attributed += 1
                    else:
                        app = "unknown"
                        report.unattributed.append(entry.job_number)
                job_partials = [
                    p for p in (
                        partials_by_host.get(n, {}).get(entry.job_number)
                        for n in mj.hostnames
                    ) if p is not None
                ]
                try:
                    summary = merge_job_partials(
                        entry.job_number, job_partials,
                        wall_seconds=float(entry.wall_seconds),
                    )
                except SummaryError as e:
                    # Narrow by design: SummaryError means the job had no
                    # usable stats (expected for short/degraded jobs) and
                    # is recorded with its reason.  Any other ValueError
                    # from the summarize layer is a real bug and
                    # propagates.
                    report.summaries_failed.append(entry.job_number)
                    report.summary_errors[entry.job_number] = str(e)
                    summary = None
                self.warehouse.add_job(
                    config.name,
                    _record_from_entry(entry, app),
                    cores_per_node=config.node.cores,
                    summary=summary,
                )
                report.jobs_loaded += 1
                in_batch += 1
                if in_batch >= batch_size:
                    self.warehouse.commit()
                    in_batch = 0

        with span("ingest.syslog"):
            for msg in syslog or []:
                if plan is not None and not (
                        plan.watermark_before <= msg.time
                        < plan.watermark_after):
                    continue  # outside this run's consumed-day window
                self.warehouse.add_syslog_event(
                    config.name, msg.time, msg.host, msg.jobid,
                    msg.kind.value, msg.severity,
                )
                report.syslog_events_loaded += 1

        if archive is not None:
            self._record_provenance(config.name, archive, plan, health,
                                    mode, row_lo)

        self.warehouse.commit()
        registry = get_registry()
        registry.counter("ingest.jobs_loaded").inc(report.jobs_loaded)
        registry.counter("ingest.summaries_failed").inc(
            len(report.summaries_failed))
        registry.counter("ingest.lariat_attributed").inc(
            report.lariat_attributed)
        registry.counter("ingest.syslog_events").inc(
            report.syslog_events_loaded)
        if plan is not None:
            d = plan.delta
            registry.counter("ingest.delta.files_new").inc(d.files_new)
            registry.counter("ingest.delta.files_lookback").inc(
                d.files_lookback)
            registry.counter("ingest.delta.files_skipped").inc(
                d.files_skipped)
            registry.counter("ingest.delta.jobs_deferred").inc(
                d.jobs_deferred)
        return report

    def _record_provenance(self, system: str, archive: HostArchive,
                           plan: _DeltaPlan | None,
                           health: IngestHealth | None, mode: str,
                           row_lo: dict[str, int]) -> None:
        """Ledger the consumed host-days and this run's row ranges.

        Every archive ingest — full, windowed, or append — records what
        it consumed, so a later ``mode="append"`` can diff against it
        and ``repro-diagnose --ledger`` can attribute rows to runs.  A
        host-day is ledgered whatever its scan outcome: a dropped
        (quarantined) host's files are consumed too, with the outcome in
        ``status``.
        """
        manifest = (plan.ledger_base if plan is not None
                    else archive.manifest())
        consumed = (
            {(h, day) for h, days in plan.days_by_host.items()
             for day in days}
            if plan is not None else set(manifest))
        status_of = {}
        if health is not None:
            status_of.update(dict.fromkeys(health.hosts_degraded,
                                           "degraded"))
            status_of.update(dict.fromkeys(health.hosts_dropped,
                                           "dropped"))
        run_id = current_run_id() or "unscoped"
        self.warehouse.record_ledger(system, [
            LedgerEntry(host=host, day=day,
                        sha256=manifest[(host, day)].sha256,
                        size=manifest[(host, day)].size,
                        mtime_ns=manifest[(host, day)].mtime_ns,
                        status=status_of.get(host, "loaded"),
                        run_id=run_id)
            for (host, day) in sorted(consumed)
        ])
        self.warehouse.record_ingest_run(system, run_id, mode, {
            t: (lo, self.warehouse._max_rowid(t))
            for t, lo in row_lo.items()
        })
