"""Match accounting records to per-host TACC_Stats streams.

TACC_Stats is batch-job aware — samples carry job ids — so matching is by
id, with time-window validation: a host stream claiming job J must have
its ``%begin``/``%end`` marks inside the accounting window (± slack for
clock skew between the scheduler master and the nodes).  Jobs shorter than
the sampling interval are excluded, exactly as the paper's study does
("jobs included ... are those longer than the default TACC_Stats sampling
interval of 10 minutes", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.accounting import AccountingEntry
from repro.tacc_stats.types import HostData

__all__ = ["MatchedJob", "MatchReport", "match_jobs"]

#: Tolerated clock skew between scheduler and node clocks, seconds.
CLOCK_SLACK = 90.0


@dataclass(frozen=True)
class MatchedJob:
    """One accounting entry with the host streams that observed it."""

    entry: AccountingEntry
    hosts: tuple[HostData, ...]

    @property
    def jobid(self) -> str:
        return self.entry.job_number

    @property
    def complete(self) -> bool:
        """All granted nodes reported stats for this job."""
        return len(self.hosts) == self.entry.granted_nodes


@dataclass
class MatchReport:
    """Bookkeeping of the match pass."""

    matched: list[MatchedJob] = field(default_factory=list)
    too_short: list[str] = field(default_factory=list)
    no_stats: list[str] = field(default_factory=list)
    window_mismatch: list[str] = field(default_factory=list)
    partial: list[str] = field(default_factory=list)

    @property
    def match_rate(self) -> float:
        total = (
            len(self.matched) + len(self.no_stats) + len(self.window_mismatch)
        )
        return len(self.matched) / total if total else 0.0


def match_jobs(
    entries: list[AccountingEntry],
    hosts: list[HostData],
    min_seconds: float = 600.0,
) -> MatchReport:
    """Join accounting to stats.

    Parameters
    ----------
    entries:
        Parsed accounting records.
    hosts:
        Parsed per-host streams (any hosts; the index is built here).
    min_seconds:
        Exclusion threshold (default: one sampling interval).
    """
    # jobid -> hosts that carry it.
    by_job: dict[str, list[HostData]] = {}
    for h in hosts:
        seen: set[str] = set()
        for m in h.marks:
            seen.add(m.jobid)
        for b in h.blocks:
            seen.update(b.jobids)
        for jid in seen:
            by_job.setdefault(jid, []).append(h)

    report = MatchReport()
    for entry in entries:
        jid = entry.job_number
        if entry.wall_seconds < min_seconds:
            report.too_short.append(jid)
            continue
        candidates = by_job.get(jid, [])
        if not candidates:
            report.no_stats.append(jid)
            continue
        ok: list[HostData] = []
        window_bad = False
        for h in candidates:
            w = h.job_window(jid)
            if w is None:
                # Stream saw the job but lost a mark (crash) — usable if
                # it has tagged blocks inside the accounting window.
                blocks = h.blocks_for_job(jid)
                if not blocks:
                    continue
                w = (blocks[0].time, blocks[-1].time)
            begin, end = w
            if (begin < entry.start_time - CLOCK_SLACK
                    or end > entry.end_time + CLOCK_SLACK):
                window_bad = True
                continue
            ok.append(h)
        if not ok:
            if window_bad:
                report.window_mismatch.append(jid)
            else:
                report.no_stats.append(jid)
            continue
        mj = MatchedJob(entry=entry, hosts=tuple(ok))
        if not mj.complete:
            report.partial.append(jid)
        report.matched.append(mj)
    return report
