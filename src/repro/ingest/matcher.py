"""Match accounting records to per-host TACC_Stats streams.

TACC_Stats is batch-job aware — samples carry job ids — so matching is by
id, with time-window validation: a host stream claiming job J must have
its ``%begin``/``%end`` marks inside the accounting window (± slack for
clock skew between the scheduler master and the nodes).  Jobs shorter than
the sampling interval are excluded, exactly as the paper's study does
("jobs included ... are those longer than the default TACC_Stats sampling
interval of 10 minutes", §4.1).

Matching itself never needs parsed sample matrices — only each host's
per-job time windows.  :class:`HostJobView` captures exactly that, so the
parallel ingest engine can match from the tiny views worker processes
ship back instead of whole :class:`HostData` objects.
:func:`match_jobs` remains the convenience entry point for callers that
do hold host data, and is implemented on top of the view path so both
produce identical decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.accounting import AccountingEntry
from repro.tacc_stats.types import HostData

__all__ = [
    "HostJobView",
    "MatchedJob",
    "MatchReport",
    "ViewMatchedJob",
    "host_job_views",
    "match_job_views",
    "match_jobs",
]

#: Tolerated clock skew between scheduler and node clocks, seconds.
CLOCK_SLACK = 90.0


@dataclass(frozen=True)
class HostJobView:
    """One host's time-window view of one job — all the matcher needs.

    ``mark_window`` is the (first ``%begin``, last ``%end``) pair, None
    when either mark is missing (node crash); ``block_span`` is the time
    span of the host's blocks tagged with the job, None when the job only
    appears in marks.  Views are a few dozen bytes, so worker processes
    can ship one per (host, job) back to the coordinator cheaply.
    """

    hostname: str
    jobid: str
    mark_window: tuple[float, float] | None
    block_span: tuple[float, float] | None


@dataclass(frozen=True)
class MatchedJob:
    """One accounting entry with the host streams that observed it."""

    entry: AccountingEntry
    hosts: tuple[HostData, ...]

    @property
    def jobid(self) -> str:
        return self.entry.job_number

    @property
    def complete(self) -> bool:
        """All granted nodes reported stats for this job."""
        return len(self.hosts) == self.entry.granted_nodes


@dataclass(frozen=True)
class ViewMatchedJob:
    """Like :class:`MatchedJob`, but naming hosts instead of holding them."""

    entry: AccountingEntry
    hostnames: tuple[str, ...]

    @property
    def jobid(self) -> str:
        return self.entry.job_number

    @property
    def complete(self) -> bool:
        """All granted nodes reported stats for this job."""
        return len(self.hostnames) == self.entry.granted_nodes


@dataclass
class MatchReport:
    """Bookkeeping of the match pass.

    ``matched`` holds :class:`MatchedJob` from :func:`match_jobs` and
    :class:`ViewMatchedJob` from :func:`match_job_views`; the counters
    and rate are identical either way.
    """

    matched: list[MatchedJob] = field(default_factory=list)
    too_short: list[str] = field(default_factory=list)
    no_stats: list[str] = field(default_factory=list)
    window_mismatch: list[str] = field(default_factory=list)
    partial: list[str] = field(default_factory=list)

    @property
    def match_rate(self) -> float:
        total = (
            len(self.matched) + len(self.no_stats) + len(self.window_mismatch)
        )
        return len(self.matched) / total if total else 0.0


def host_job_views(host: HostData) -> dict[str, HostJobView]:
    """Every job this host's stream mentions, as matcher views.

    One pass over the blocks collects each job's tagged-block span; mark
    windows come from :meth:`HostData.job_window`.  Jobs appearing only
    in marks (no tagged blocks survive) still get a view, because the
    matcher counts such hosts when their mark window fits.
    """
    span_first: dict[str, float] = {}
    span_last: dict[str, float] = {}
    for b in host.blocks:
        for jid in b.jobids:
            if jid not in span_first:
                span_first[jid] = b.time
            span_last[jid] = b.time
    seen = {m.jobid for m in host.marks}
    seen.update(span_first)
    out: dict[str, HostJobView] = {}
    for jid in seen:
        span = ((span_first[jid], span_last[jid])
                if jid in span_first else None)
        out[jid] = HostJobView(
            hostname=host.hostname,
            jobid=jid,
            mark_window=host.job_window(jid),
            block_span=span,
        )
    return out


def match_job_views(
    entries: list[AccountingEntry],
    views: list[HostJobView],
    min_seconds: float = 600.0,
) -> tuple[list[ViewMatchedJob], MatchReport]:
    """Join accounting to per-host job views.

    Host order within each match follows the order hosts first appear in
    *views* — pass views in sorted-hostname order for deterministic
    output.  Returns the matches plus the bookkeeping report (the
    report's ``matched`` list holds the same :class:`ViewMatchedJob`
    objects).
    """
    by_job: dict[str, list[HostJobView]] = {}
    for v in views:
        by_job.setdefault(v.jobid, []).append(v)

    matched: list[ViewMatchedJob] = []
    report = MatchReport()
    for entry in entries:
        jid = entry.job_number
        if entry.wall_seconds < min_seconds:
            report.too_short.append(jid)
            continue
        candidates = by_job.get(jid, [])
        if not candidates:
            report.no_stats.append(jid)
            continue
        ok: list[str] = []
        window_bad = False
        for v in candidates:
            w = v.mark_window
            if w is None:
                # Stream saw the job but lost a mark (crash) — usable if
                # it has tagged blocks inside the accounting window.
                if v.block_span is None:
                    continue
                w = v.block_span
            begin, end = w
            if (begin < entry.start_time - CLOCK_SLACK
                    or end > entry.end_time + CLOCK_SLACK):
                window_bad = True
                continue
            ok.append(v.hostname)
        if not ok:
            if window_bad:
                report.window_mismatch.append(jid)
            else:
                report.no_stats.append(jid)
            continue
        mj = ViewMatchedJob(entry=entry, hostnames=tuple(ok))
        if not mj.complete:
            report.partial.append(jid)
        matched.append(mj)
        report.matched.append(mj)
    return matched, report


def match_jobs(
    entries: list[AccountingEntry],
    hosts: list[HostData],
    min_seconds: float = 600.0,
) -> MatchReport:
    """Join accounting to stats.

    Parameters
    ----------
    entries:
        Parsed accounting records.
    hosts:
        Parsed per-host streams (any hosts; the index is built here).
    min_seconds:
        Exclusion threshold (default: one sampling interval).
    """
    views: list[HostJobView] = []
    by_name: dict[str, HostData] = {}
    for h in hosts:
        by_name[h.hostname] = h
        views.extend(host_job_views(h).values())
    matched, report = match_job_views(entries, views, min_seconds)
    report.matched = [
        MatchedJob(entry=m.entry,
                   hosts=tuple(by_name[n] for n in m.hostnames))
        for m in matched
    ]
    return report
