"""Statistics primitives used throughout the analytics layer.

The paper's analyses are built on three tools: node-hour *weighted* moments
(every per-job metric is "calculated by the job weighted by node*hour",
§4.1), Pearson correlation (used to select the 8 key metrics, §4.2), and
ordinary least squares with parameter p-values (the persistence fits of
Table 1 / Figure 6 quote slope/intercept p-values and R²).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = [
    "weighted_mean",
    "weighted_std",
    "weighted_quantile",
    "coefficient_of_variation",
    "pearson_matrix",
    "LinearFit",
    "fit_line",
]


def _as_weights(values: np.ndarray, weights) -> np.ndarray:
    if weights is None:
        return np.ones_like(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if w.shape != values.shape:
        raise ValueError(f"weights shape {w.shape} != values shape {values.shape}")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    if w.sum() == 0:
        raise ValueError("weights sum to zero")
    return w


def weighted_mean(values, weights=None) -> float:
    """Weighted arithmetic mean; ``weights=None`` means uniform."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("empty input")
    w = _as_weights(v, weights)
    return float(np.sum(v * w) / np.sum(w))


def weighted_std(values, weights=None, ddof: int = 0) -> float:
    """Weighted standard deviation.

    With ``ddof=1`` applies the frequency-weights correction
    ``sum(w) / (sum(w) - 1)`` (node-hours act as frequency weights here).
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("empty input")
    w = _as_weights(v, weights)
    mu = np.sum(v * w) / np.sum(w)
    var = np.sum(w * (v - mu) ** 2) / np.sum(w)
    if ddof:
        wsum = np.sum(w)
        if wsum <= ddof:
            raise ValueError("not enough weight for requested ddof")
        var *= wsum / (wsum - ddof)
    return float(np.sqrt(var))


def weighted_quantile(values, q: float, weights=None) -> float:
    """Weighted quantile by inverting the weighted empirical CDF.

    Uses the midpoint convention (C = 1/2), which reduces to the usual
    ``numpy.quantile(..., method='linear')`` neighbourhood for uniform
    weights and is exact at the weighted median.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("empty input")
    w = _as_weights(v, weights)
    order = np.argsort(v, kind="stable")
    v, w = v[order], w[order]
    cum = np.cumsum(w) - 0.5 * w
    cum /= np.sum(w)
    return float(np.interp(q, cum, v))


def coefficient_of_variation(values, weights=None) -> float:
    """std / |mean| — the paper orders metric predictability by this."""
    mu = weighted_mean(values, weights)
    if mu == 0:
        raise ValueError("mean is zero; CV undefined")
    return weighted_std(values, weights) / abs(mu)


def pearson_matrix(columns: dict[str, np.ndarray]) -> tuple[list[str], np.ndarray]:
    """Pearson correlation matrix of named, equal-length series.

    Returns ``(names, R)`` where ``R[i, j]`` is the correlation between
    columns ``names[i]`` and ``names[j]``.  Constant columns are rejected —
    their correlation is undefined and silently returning NaN would poison
    the independent-set selection downstream.
    """
    names = list(columns)
    if not names:
        raise ValueError("no columns")
    mat = np.vstack([np.asarray(columns[n], dtype=float) for n in names])
    if mat.shape[1] < 2:
        raise ValueError("need at least two observations")
    stds = mat.std(axis=1)
    for name, s in zip(names, stds):
        if s == 0:
            raise ValueError(f"column {name!r} is constant; correlation undefined")
    r = np.corrcoef(mat)
    return names, r


@dataclass(frozen=True)
class LinearFit:
    """OLS fit ``y ≈ intercept + slope * x`` with inference statistics.

    Attributes mirror what the paper quotes for Figure 6: point estimates,
    standard errors, two-sided p-values (t distribution, n-2 dof), and R².
    """

    slope: float
    intercept: float
    r_squared: float
    slope_stderr: float
    intercept_stderr: float
    slope_p: float
    intercept_p: float
    n: int

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted line at *x*."""
        return self.intercept + self.slope * np.asarray(x, dtype=float)

    def summary(self) -> str:
        """One-line rendering in the paper's style: value(err) p=…"""
        return (
            f"intercept {self.intercept:+.3f}({self.intercept_stderr:.3f}) "
            f"p={self.intercept_p:.2g}, slope {self.slope:+.3f}"
            f"({self.slope_stderr:.3f}) p={self.slope_p:.2g}, "
            f"R^2={self.r_squared:.3f}"
        )


def fit_line(x, y) -> LinearFit:
    """Ordinary least squares with full inference (see :class:`LinearFit`)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = x.size
    if n < 3:
        raise ValueError("need at least 3 points for inference")
    xm, ym = x.mean(), y.mean()
    sxx = float(np.sum((x - xm) ** 2))
    if sxx == 0:
        raise ValueError("x is constant; slope undefined")
    sxy = float(np.sum((x - xm) * (y - ym)))
    slope = sxy / sxx
    intercept = ym - slope * xm
    resid = y - (intercept + slope * x)
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((y - ym) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    dof = n - 2
    sigma2 = ss_res / dof if dof > 0 else float("nan")
    slope_se = float(np.sqrt(sigma2 / sxx))
    intercept_se = float(np.sqrt(sigma2 * (1.0 / n + xm**2 / sxx)))

    def _pvalue(estimate: float, se: float) -> float:
        if se == 0:
            # A perfect fit: the estimate is either exactly zero (no
            # evidence of an effect) or exactly nonzero (infinite t).
            return 1.0 if estimate == 0 else 0.0
        t = abs(estimate / se)
        return float(2.0 * sps.t.sf(t, dof))

    return LinearFit(
        slope=slope,
        intercept=intercept,
        r_squared=r_squared,
        slope_stderr=slope_se,
        intercept_stderr=intercept_se,
        slope_p=_pvalue(slope, slope_se),
        intercept_p=_pvalue(intercept, intercept_se),
        n=n,
    )
