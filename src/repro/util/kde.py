"""Gaussian kernel density estimation with Scott's rule.

Figures 10 and 12 of the paper show kernel densities "produced by the R
statistical software environment ... in order to avoid making binning
choices", citing Scott (1992).  We implement the same estimator directly:
a Gaussian kernel with Scott's bandwidth ``h = sigma * n^(-1/5)``, with
optional observation weights (node-hours).
"""

from __future__ import annotations

import numpy as np

__all__ = ["scott_bandwidth", "GaussianKDE"]

_SQRT_2PI = float(np.sqrt(2.0 * np.pi))


def scott_bandwidth(values, weights=None) -> float:
    """Scott's rule-of-thumb bandwidth for 1-D data.

    ``h = sigma_hat * n_eff^(-1/5)`` where ``n_eff`` is Kish's effective
    sample size when weights are given.
    """
    v = np.asarray(values, dtype=float)
    if v.size < 2:
        raise ValueError("need at least 2 observations")
    if weights is None:
        n_eff = float(v.size)
        sigma = float(v.std(ddof=1))
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != v.shape:
            raise ValueError("weights shape mismatch")
        if (w < 0).any() or w.sum() == 0:
            raise ValueError("weights must be non-negative and not all zero")
        n_eff = float(w.sum() ** 2 / np.sum(w**2))
        mu = np.sum(w * v) / w.sum()
        sigma = float(np.sqrt(np.sum(w * (v - mu) ** 2) / w.sum()))
    if sigma == 0:
        raise ValueError("data has zero variance; KDE bandwidth undefined")
    return sigma * n_eff ** (-1.0 / 5.0)


class GaussianKDE:
    """Weighted 1-D Gaussian kernel density estimate.

    Parameters
    ----------
    values:
        Observations.
    weights:
        Optional non-negative weights (normalized internally).
    bandwidth:
        Kernel bandwidth; default is :func:`scott_bandwidth`.

    Notes
    -----
    Evaluation is vectorized and chunked so that estimating a density from
    hundreds of thousands of samples on a fine grid stays within a bounded
    memory footprint (the naive outer product would allocate
    ``n_points × n_samples`` doubles).
    """

    #: Max elements per evaluation chunk (~64 MB of float64).
    _CHUNK_ELEMS = 8_000_000

    def __init__(self, values, weights=None, bandwidth: float | None = None):
        self.values = np.asarray(values, dtype=float).ravel()
        if self.values.size < 2:
            raise ValueError("need at least 2 observations")
        if weights is None:
            self.weights = np.full(self.values.size, 1.0 / self.values.size)
        else:
            w = np.asarray(weights, dtype=float).ravel()
            if w.shape != self.values.shape:
                raise ValueError("weights shape mismatch")
            if (w < 0).any() or w.sum() == 0:
                raise ValueError("weights must be non-negative and not all zero")
            self.weights = w / w.sum()
        self.bandwidth = (
            float(bandwidth)
            if bandwidth is not None
            else scott_bandwidth(self.values, weights)
        )
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def __call__(self, grid) -> np.ndarray:
        """Evaluate the density at each point of *grid*."""
        x = np.asarray(grid, dtype=float).ravel()
        h = self.bandwidth
        out = np.empty_like(x)
        step = max(1, self._CHUNK_ELEMS // max(1, self.values.size))
        for lo in range(0, x.size, step):
            hi = min(lo + step, x.size)
            z = (x[lo:hi, None] - self.values[None, :]) / h
            k = np.exp(-0.5 * z * z)
            out[lo:hi] = k @ self.weights
        out /= h * _SQRT_2PI
        return out.reshape(np.shape(grid))

    def grid(self, n: int = 256, pad: float = 3.0) -> np.ndarray:
        """A convenient evaluation grid spanning the data ± *pad* bandwidths."""
        lo = float(self.values.min()) - pad * self.bandwidth
        hi = float(self.values.max()) + pad * self.bandwidth
        return np.linspace(lo, hi, n)

    def integral(self, grid=None) -> float:
        """Trapezoidal integral of the density (≈ 1; used by tests)."""
        g = self.grid(1024) if grid is None else np.asarray(grid, dtype=float)
        return float(np.trapezoid(self(g), g))

    def mode(self, n: int = 1024) -> float:
        """Location of the highest density on a fine default grid."""
        g = self.grid(n)
        return float(g[int(np.argmax(self(g)))])
