"""Plain-text table rendering for reports and benchmark output.

Every stakeholder report and every benchmark prints its rows through
:func:`render_table`, so the "regenerate the paper's table" harnesses all
share one consistent, diffable output format.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

__all__ = ["render_table", "render_kv", "Column"]


class Column:
    """Declarative table column.

    Parameters
    ----------
    title:
        Header text.
    key:
        Dict key / attribute name, or a callable ``row -> value``.
    fmt:
        ``format()`` spec applied to the value (e.g. ``'.3f'``), or a
        callable ``value -> str``.
    align:
        ``'<'``, ``'>'`` or ``'^'``; numbers default to right alignment.
    """

    def __init__(
        self,
        title: str,
        key: str | Callable[[Any], Any] | None = None,
        fmt: str | Callable[[Any], str] = "",
        align: str | None = None,
    ):
        self.title = title
        self.key = key if key is not None else title
        self.fmt = fmt
        self.align = align

    def value(self, row: Any) -> Any:
        if callable(self.key):
            return self.key(row)
        if isinstance(row, dict):
            return row[self.key]
        return getattr(row, self.key)

    def render(self, row: Any) -> str:
        v = self.value(row)
        if v is None:
            return "-"
        if callable(self.fmt):
            return self.fmt(v)
        return format(v, self.fmt)


def _normalize_columns(columns: Sequence[Column | str]) -> list[Column]:
    return [c if isinstance(c, Column) else Column(c) for c in columns]


def render_table(
    rows: Iterable[Any],
    columns: Sequence[Column | str],
    title: str | None = None,
) -> str:
    """Render rows (dicts or objects) as an aligned ASCII table."""
    cols = _normalize_columns(columns)
    rows = list(rows)
    rendered = [[c.render(r) for c in cols] for r in rows]
    widths = [
        max(len(c.title), *(len(cells[i]) for cells in rendered))
        if rendered
        else len(c.title)
        for i, c in enumerate(cols)
    ]
    aligns = []
    for i, c in enumerate(cols):
        if c.align:
            aligns.append(c.align)
        elif rendered and all(_looks_numeric(cells[i]) for cells in rendered):
            aligns.append(">")
        else:
            aligns.append("<")

    def fmt_row(cells: list[str]) -> str:
        return "  ".join(
            format(cell, f"{a}{w}") for cell, a, w in zip(cells, aligns, widths)
        ).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_row([c.title for c in cols]))
    lines.append(sep)
    lines.extend(fmt_row(cells) for cells in rendered)
    return "\n".join(lines)


def _looks_numeric(text: str) -> bool:
    t = text.replace(",", "").replace("%", "").strip()
    if t in ("-", ""):
        return True
    try:
        float(t)
        return True
    except ValueError:
        return False


def render_kv(pairs: dict[str, Any], title: str | None = None) -> str:
    """Render a key/value block (used for report headers)."""
    if not pairs:
        raise ValueError("no pairs to render")
    width = max(len(k) for k in pairs)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * max(len(title), width + 2))
    for k, v in pairs.items():
        lines.append(f"{k:<{width}}  {v}")
    return "\n".join(lines)
