"""Unit constants and human-readable formatting.

TACC_Stats reports memory in KB, file systems in bytes, FLOPS as raw event
counts; XDMoD reports TF and GB.  Keeping all conversions here prevents the
classic off-by-1024 bug class.
"""

from __future__ import annotations

import re

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "format_bytes",
    "format_count",
    "parse_bytes",
]

# Binary (memory / storage) units.
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# Decimal (rates, FLOPS) units.
KILO = 10**3
MEGA = 10**6
GIGA = 10**9
TERA = 10**12

_BINARY_SUFFIXES = [("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB), ("B", 1)]
_DECIMAL_SUFFIXES = [("T", TERA), ("G", GIGA), ("M", MEGA), ("K", KILO), ("", 1)]

_PARSE_RE = re.compile(
    r"^\s*([0-9]*\.?[0-9]+)\s*(TB|GB|MB|KB|B|TIB|GIB|MIB|KIB)?\s*$",
    re.IGNORECASE,
)

_PARSE_MULT = {
    None: 1,
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": TB,
    "KIB": KB,
    "MIB": MB,
    "GIB": GB,
    "TIB": TB,
}


def format_bytes(n: float, precision: int = 1) -> str:
    """Render a byte count with a binary suffix: ``format_bytes(3*GB)`` → ``'3.0 GB'``."""
    neg = n < 0
    n = abs(float(n))
    for suffix, mult in _BINARY_SUFFIXES:
        if n >= mult or mult == 1:
            value = n / mult
            return f"{'-' if neg else ''}{value:.{precision}f} {suffix}"
    raise AssertionError("unreachable")


def format_count(n: float, precision: int = 1, unit: str = "") -> str:
    """Render a decimal count: ``format_count(2.1e13, unit='F')`` → ``'21.0 TF'``."""
    neg = n < 0
    n = abs(float(n))
    for suffix, mult in _DECIMAL_SUFFIXES:
        if n >= mult or mult == 1:
            value = n / mult
            return f"{'-' if neg else ''}{value:.{precision}f} {suffix}{unit}"
    raise AssertionError("unreachable")


def parse_bytes(text: str) -> int:
    """Parse ``'24 GB'`` / ``'512KB'`` / ``'42'`` into a byte count.

    Raises
    ------
    ValueError
        If the string is not a number with an optional binary suffix.
    """
    m = _PARSE_RE.match(text)
    if not m:
        raise ValueError(f"cannot parse byte quantity: {text!r}")
    value = float(m.group(1))
    suffix = m.group(2).upper() if m.group(2) else None
    return int(round(value * _PARSE_MULT[suffix]))
