"""Terminal-friendly chart rendering.

The paper's figures are radar charts, scatter plots, time series and kernel
densities.  Examples and benchmarks render the *data* behind each figure as
compact unicode charts so a user can eyeball the shape without matplotlib
(which is not a dependency).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "scatter_text", "radar_text", "series_text"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """Render values as a one-line unicode sparkline."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("empty input")
    lo = float(np.nanmin(v)) if lo is None else lo
    hi = float(np.nanmax(v)) if hi is None else hi
    if hi <= lo:
        return _SPARK_LEVELS[0] * v.size
    idx = np.clip(
        ((v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)).round().astype(int),
        0,
        len(_SPARK_LEVELS) - 1,
    )
    return "".join(_SPARK_LEVELS[i] for i in idx)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    fmt: str = ".2f",
) -> str:
    """Horizontal bar chart; bars scale to the max value."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    if not labels:
        raise ValueError("empty input")
    v = np.asarray(values, dtype=float)
    vmax = float(np.nanmax(np.abs(v))) or 1.0
    lw = max(len(s) for s in labels)
    lines = []
    for label, val in zip(labels, v):
        n = int(round(abs(val) / vmax * width))
        lines.append(f"{label:<{lw}}  {'█' * n:<{width}}  {format(val, fmt)}")
    return "\n".join(lines)


def radar_text(metrics: dict[str, float], baseline: float = 1.0, width: int = 40) -> str:
    """Text rendering of a normalized radar/usage profile.

    Each axis shows the value as a bar with a ``|`` tick at *baseline*
    (``1.0`` = facility-average usage in the paper's Figures 2/3/5).
    """
    if not metrics:
        raise ValueError("empty profile")
    vmax = max(max(metrics.values()), baseline) * 1.05
    lw = max(len(k) for k in metrics)
    tick = int(round(baseline / vmax * width))
    lines = []
    for name, val in metrics.items():
        n = int(round(max(val, 0.0) / vmax * width))
        bar = list(" " * width)
        for i in range(min(n, width)):
            bar[i] = "█"
        if 0 <= tick < width:
            bar[tick] = "|" if bar[tick] == " " else "╋"
        lines.append(f"{name:<{lw}}  {''.join(bar)}  {val:5.2f}")
    return "\n".join(lines)


def scatter_text(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 64,
    height: int = 20,
    logx: bool = False,
    logy: bool = False,
    mark: str = "*",
    overlay: dict[tuple[float, float], str] | None = None,
) -> str:
    """Character-grid scatter plot (Figure 4 style).

    *overlay* maps data coordinates to characters drawn on top (used for the
    "circled" outlier users).
    """
    xv = np.asarray(x, dtype=float)
    yv = np.asarray(y, dtype=float)
    if xv.size == 0 or xv.shape != yv.shape:
        raise ValueError("x and y must be equal-length, non-empty")

    def tx(v, log):
        v = np.asarray(v, dtype=float)
        if log:
            v = np.where(v > 0, v, np.nan)
            return np.log10(v)
        return v

    xs, ys = tx(xv, logx), tx(yv, logy)
    ok = ~(np.isnan(xs) | np.isnan(ys))
    xs, ys = xs[ok], ys[ok]
    if xs.size == 0:
        raise ValueError("no plottable points")
    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    x1 = x1 if x1 > x0 else x0 + 1.0
    y1 = y1 if y1 > y0 else y0 + 1.0
    grid = [[" "] * width for _ in range(height)]

    def put(px, py, ch):
        col = int((px - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - int((py - y0) / (y1 - y0) * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = ch

    for px, py in zip(xs, ys):
        put(px, py, mark)
    for (ox, oy), ch in (overlay or {}).items():
        oxs = float(tx([ox], logx)[0])
        oys = float(tx([oy], logy)[0])
        put(oxs, oys, ch)
    frame = ["+" + "-" * width + "+"]
    frame += ["|" + "".join(row) + "|" for row in grid]
    frame.append("+" + "-" * width + "+")
    return "\n".join(frame)


def series_text(
    t: Sequence[float],
    y: Sequence[float],
    width: int = 72,
    label: str = "",
    fmt: str = ".1f",
) -> str:
    """Down-sampled sparkline of a time series with min/mean/max annotation."""
    tv = np.asarray(t, dtype=float)
    yv = np.asarray(y, dtype=float)
    if tv.size == 0 or tv.shape != yv.shape:
        raise ValueError("t and y must be equal-length, non-empty")
    if tv.size > width:
        edges = np.linspace(0, tv.size, width + 1).astype(int)
        yd = np.array([yv[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    else:
        yd = yv
    body = sparkline(yd)
    info = (
        f"min={format(np.nanmin(yv), fmt)} mean={format(np.nanmean(yv), fmt)} "
        f"max={format(np.nanmax(yv), fmt)}"
    )
    prefix = f"{label}: " if label else ""
    return f"{prefix}{body}  [{info}]"
