"""Shared low-level utilities: RNG streams, units, time, statistics, KDE,
table/chart rendering.

These modules are dependency-free (numpy/scipy only) and used by every other
subpackage; nothing in here knows about clusters, jobs, or metrics.
"""

from repro.util.kde import GaussianKDE, scott_bandwidth
from repro.util.rng import RngFactory
from repro.util.stats import (
    LinearFit,
    coefficient_of_variation,
    fit_line,
    pearson_matrix,
    weighted_mean,
    weighted_quantile,
    weighted_std,
)
from repro.util.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    diurnal_factor,
    format_epoch,
)
from repro.util.units import (
    GB,
    GIGA,
    KB,
    MB,
    MEGA,
    TB,
    TERA,
    format_bytes,
    format_count,
    parse_bytes,
)

__all__ = [
    "RngFactory",
    "KB",
    "MB",
    "GB",
    "TB",
    "GIGA",
    "MEGA",
    "TERA",
    "format_bytes",
    "format_count",
    "parse_bytes",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "format_epoch",
    "diurnal_factor",
    "LinearFit",
    "coefficient_of_variation",
    "fit_line",
    "pearson_matrix",
    "weighted_mean",
    "weighted_quantile",
    "weighted_std",
    "GaussianKDE",
    "scott_bandwidth",
]
