"""Simulated-time helpers.

The simulator runs on integer "facility epoch" seconds starting at 0 (plus an
arbitrary wall-clock anchor used only when rendering log lines).  Using plain
seconds everywhere keeps the discrete-event engine, the collectors, and the
analytics free of timezone/datetime arithmetic.
"""

from __future__ import annotations

import math

__all__ = [
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "EPOCH_ANCHOR",
    "format_epoch",
    "format_duration",
    "diurnal_factor",
    "aligned_samples",
    "date_to_day_index",
    "day_index_to_date",
    "period_label",
    "label_to_period_index",
]

MINUTE = 60
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY

#: Wall-clock anchor for rendering: 2011-06-01T00:00:00Z, the start of the
#: paper's Ranger study period.  Only used to make log lines look real.
EPOCH_ANCHOR = 1306886400

_MONTH_DAYS = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
_MONTHS = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
]


def _civil_from_days(days: int) -> tuple[int, int, int]:
    """Convert days-since-1970-01-01 to (year, month, day).

    Howard Hinnant's algorithm; avoids ``datetime`` so the hot logging path
    stays allocation-light and we never touch local timezones.
    """
    days += 719468
    era = (days if days >= 0 else days - 146096) // 146097
    doe = days - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    y = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    d = doy - (153 * mp + 2) // 5 + 1
    m = mp + 3 if mp < 10 else mp - 9
    return (y + (1 if m <= 2 else 0), m, d)


def _days_from_civil(y: int, m: int, d: int) -> int:
    """Convert (year, month, day) to days-since-1970-01-01.

    Exact inverse of :func:`_civil_from_days` (same Hinnant paper), so
    archive date stamps round-trip to day indices without ``datetime``.
    """
    y -= 1 if m <= 2 else 0
    era = (y if y >= 0 else y - 399) // 400
    yoe = y - era * 400
    doy = (153 * (m + (-3 if m > 2 else 9)) + 2) // 5 + d - 1
    doe = yoe * 365 + yoe // 4 - yoe // 100 + doy
    return era * 146097 + doe - 719468


def day_index_to_date(day_index: int, anchor: int = EPOCH_ANCHOR) -> str:
    """Render a facility day index (``t // DAY``) as ``YYYY-MM-DD``."""
    y, m, d = _civil_from_days(anchor // DAY + day_index)
    return f"{y:04d}-{m:02d}-{d:02d}"


def date_to_day_index(date: str, anchor: int = EPOCH_ANCHOR) -> int:
    """Parse a ``YYYY-MM-DD`` stamp back to its facility day index.

    Inverse of :func:`day_index_to_date`; used by the ingest ledger to
    reason about archive file names in facility time.
    """
    y, m, d = (int(part) for part in date.split("-"))
    return _days_from_civil(y, m, d) - anchor // DAY


def period_label(index: int, period: int = DAY,
                 anchor: int = EPOCH_ANCHOR) -> str:
    """Render a facility rotation-period index (``t // period``) as a
    filesystem-safe archive label.

    With the canonical daily rotation (``period == DAY``, or any whole
    multiple of it) this is exactly :func:`day_index_to_date` —
    ``YYYY-MM-DD`` — so day archives keep their historical file names.
    Sub-day periods (live streaming segments) append the segment's
    start time of day: ``YYYY-MM-DDTHHMMSS``, colon-free and
    zero-padded so lexicographic order stays chronological.
    """
    period = int(period)
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    start = index * period
    if period % DAY == 0:
        return day_index_to_date(start // DAY, anchor)
    return format_epoch(start, anchor).replace(":", "")


def label_to_period_index(label: str, period: int = DAY,
                          anchor: int = EPOCH_ANCHOR) -> int:
    """Parse an archive file label back to its rotation-period index.

    Inverse of :func:`period_label`.  Accepts both the date-only form
    (``YYYY-MM-DD``, midnight) and the segment form
    (``YYYY-MM-DDTHHMMSS``), so a sub-day archive can still reason
    about a stray day-labelled file and vice versa.
    """
    period = int(period)
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    date, _, tod = label.partition("T")
    seconds = date_to_day_index(date, anchor) * DAY
    if tod:
        if len(tod) != 6 or not tod.isdigit():
            raise ValueError(f"bad segment label {label!r}")
        seconds += (int(tod[0:2]) * HOUR + int(tod[2:4]) * MINUTE
                    + int(tod[4:6]))
    return seconds // period


def format_epoch(sim_seconds: float, anchor: int = EPOCH_ANCHOR) -> str:
    """Render simulated seconds as ``YYYY-MM-DDTHH:MM:SS`` (UTC, anchor-based)."""
    t = int(anchor + sim_seconds)
    days, rem = divmod(t, DAY)
    hh, rem = divmod(rem, HOUR)
    mm, ss = divmod(rem, MINUTE)
    y, mo, d = _civil_from_days(days)
    return f"{y:04d}-{mo:02d}-{d:02d}T{hh:02d}:{mm:02d}:{ss:02d}"


def format_duration(seconds: float) -> str:
    """Render a duration as ``D+HH:MM:SS`` (SGE accounting style)."""
    seconds = int(round(seconds))
    days, rem = divmod(seconds, DAY)
    hh, rem = divmod(rem, HOUR)
    mm, ss = divmod(rem, MINUTE)
    if days:
        return f"{days}+{hh:02d}:{mm:02d}:{ss:02d}"
    return f"{hh:02d}:{mm:02d}:{ss:02d}"


def diurnal_factor(
    sim_seconds: float,
    day_amplitude: float = 0.35,
    week_amplitude: float = 0.15,
    peak_hour: float = 15.0,
) -> float:
    """Relative activity multiplier at a simulated time.

    Submission rates at real centers swing through the day (peak mid
    afternoon) and dip on weekends; the product of two raised cosines gives a
    smooth, strictly positive modulation with mean ≈ 1.

    Parameters
    ----------
    day_amplitude, week_amplitude:
        Fractional swing of the daily / weekly cycle (0 disables it).
    peak_hour:
        Hour of day (0-24) at which the daily cycle peaks.
    """
    hour = (sim_seconds % DAY) / HOUR
    dow = (sim_seconds % WEEK) / DAY  # 0 = anchor weekday
    daily = 1.0 + day_amplitude * math.cos(2 * math.pi * (hour - peak_hour) / 24.0)
    # Anchor 2011-06-01 was a Wednesday; weekend trough at dow ~ 3.5-4.5.
    weekly = 1.0 + week_amplitude * math.cos(2 * math.pi * (dow - 1.0) / 7.0)
    return daily * weekly


def aligned_samples(start: float, end: float, interval: float) -> list[float]:
    """Sampling instants in ``[start, end]``: start, every aligned interval tick,
    and end — mirroring TACC_Stats' begin/periodic/end invocations.

    The periodic ticks are aligned to multiples of *interval* in facility
    time (the real collector runs from cron, so all nodes tick together).
    """
    if end < start:
        raise ValueError(f"end ({end}) before start ({start})")
    if interval <= 0:
        raise ValueError("interval must be positive")
    ticks = [float(start)]
    first_tick = math.ceil(start / interval) * interval
    if first_tick == start:
        first_tick += interval
    t = first_tick
    while t < end:
        ticks.append(float(t))
        t += interval
    if end > start:
        ticks.append(float(end))
    return ticks
