"""Deterministic, named random-number streams.

Every stochastic component of the simulator (arrivals, application behaviour,
outages, per-node noise, ...) draws from its own named substream so that

* the whole facility simulation is reproducible from a single integer seed,
* adding draws to one component never perturbs another (no shared cursor),
* parallel decomposition by job or node stays deterministic regardless of
  evaluation order.

Streams are derived with :class:`numpy.random.SeedSequence` spawned by a
stable 128-bit hash of the stream name, so ``RngFactory(7).stream("x")`` is
identical across processes and platforms.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "stable_hash64"]


def stable_hash64(text: str) -> int:
    """Return a stable (platform/process independent) 64-bit hash of *text*.

    Python's builtin ``hash`` is salted per process; we need a value that is
    identical across runs so that named RNG streams reproduce.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngFactory:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Master seed for the whole simulation.

    Examples
    --------
    >>> rf = RngFactory(42)
    >>> a = rf.stream("arrivals").integers(0, 100, 3)
    >>> b = RngFactory(42).stream("arrivals").integers(0, 100, 3)
    >>> (a == b).all()
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named stream.

        Repeated calls with the same name return generators that produce the
        same sequence (each call restarts the stream).
        """
        ss = np.random.SeedSequence([self._seed, stable_hash64(name)])
        return np.random.default_rng(ss)

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, e.g. one per job or per node.

        The child's streams are independent of the parent's and of any other
        child's, but fully determined by ``(seed, name)``.
        """
        return RngFactory(
            (self._seed * 0x9E3779B97F4A7C15 + stable_hash64(name)) % (1 << 63)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self._seed})"
