"""Columnar analytics engine: one shared, immutable warehouse snapshot.

Every report and figure bench used to re-open the SQLite warehouse and
re-pivot the long-form ``job_metrics`` table independently.  The
job-specific monitoring literature (MPCDF, LIKWID Monitoring Stack) is
blunt that the *reporting* tier, not collection, is what must scale to
interactive many-user traffic — so this module makes the whole analytics
surface share one columnar image of the warehouse:

* :class:`SystemFrame` — one system's joined job+metrics table as column
  arrays, loaded with two bulk ``SELECT``\\ s (jobs, then one pass over
  ``job_metrics`` served by the covering index) instead of a correlated
  subquery per metric per job.  Dimension columns are
  dictionary-encoded: an ``int32`` code array plus the sorted unique
  values, so equality filters and group-bys run on integer arrays.
* :class:`WarehouseSnapshot` — the per-warehouse container: frames and
  series are loaded lazily, once, and memoized together with query and
  report results.  A snapshot is pinned to the warehouse's
  ``data_version`` (generation stamp + in-process mutation counter);
  any ingest commit bumps the stamp, and the next analytics access
  rebuilds from scratch.  Until then, every :class:`~repro.xdmod.query.
  JobQuery`, report, and figure bench on the same warehouse shares one
  scan.

The memo cache is keyed by ``(system, filter spec, group spec,
metrics)`` tuples supplied by the query layer; keys never embed array
data.  ``set_cache_enabled(False)`` turns memoization off globally
(the ``repro-report --no-report-cache`` escape hatch) without touching
the shared frames.

Concurrency contract (the query service runs thousands of dashboard
sessions over one snapshot):

* a *published* snapshot is never mutated — :meth:`WarehouseSnapshot.
  refresh` builds a replacement object and :meth:`for_warehouse` swaps
  it in atomically, so a reader that grabbed the old handle keeps one
  consistent frozen view for its whole request (no half-extended
  frames, no memo entries pruned out from under it);
* lazy loads (frames, series, system info) serialize on a load lock —
  both because the SQLite connection is shared and so two threads never
  duplicate a bulk scan;
* memo bookkeeping (hit/miss counts and the entry store) serializes on
  a second, short-hold lock; the compute itself runs outside it, so
  distinct keys compute concurrently.  Two threads racing the same
  cold key may both compute (both count as misses; the first store
  wins), which keeps ``hits + misses == calls`` exact under contention.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Callable

import numpy as np

from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import span

__all__ = [
    "DIMENSIONS",
    "FACT_COLUMNS",
    "SystemFrame",
    "WarehouseSnapshot",
    "set_cache_enabled",
    "cache_enabled",
]

#: The categorical job dimensions, dictionary-encoded in every frame.
DIMENSIONS = ("user", "account", "science_field", "app", "queue",
              "exit_status")

#: Numeric per-job facts carried by the ``jobs`` table itself.
FACT_COLUMNS = ("submit_time", "start_time", "end_time", "nodes", "cores",
                "node_hours")

_CACHE_ENABLED = True


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable query+report memoization (frames stay
    shared either way)."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)


def cache_enabled() -> bool:
    """Whether query/report memoization is currently on."""
    return _CACHE_ENABLED


def _freeze(a: np.ndarray) -> np.ndarray:
    """Snapshot arrays are shared across every consumer: make writes
    fail loudly instead of corrupting a neighbour's report."""
    a.flags.writeable = False
    return a


class SystemFrame:
    """One system's jobs as immutable column arrays.

    Rows are ordered by ``jobid`` (string sort), matching
    :meth:`Warehouse.job_table`.  All :data:`SUMMARY_METRICS` are loaded
    (NaN where a job has no stored value); the query layer selects the
    completeness subset it needs via :meth:`complete_mask`.
    """

    __slots__ = ("system", "n_rows", "jobid", "numeric", "codes", "uniques",
                 "_code_of", "_decoded", "_complete", "_jobs_hi",
                 "_metrics_hi")

    def __init__(self, warehouse: Warehouse, system: str):
        self.system = system
        conn = warehouse.connection
        # Rowid watermarks taken before the reads: rows above them are
        # exactly what :meth:`extended` must fetch later (the warehouse
        # write path is insert-only unless it declares destruction).
        self._jobs_hi = warehouse._max_rowid("jobs")
        self._metrics_hi = warehouse._max_rowid("job_metrics")
        dim_cols = ", ".join(DIMENSIONS)
        fact_cols = ", ".join(FACT_COLUMNS)
        rows = conn.execute(
            f"SELECT jobid, {dim_cols}, {fact_cols} FROM jobs"
            f" WHERE system=? ORDER BY jobid", (system,)
        ).fetchall()
        n = self.n_rows = len(rows)
        cols = list(zip(*rows)) if rows else [
            [] for _ in range(1 + len(DIMENSIONS) + len(FACT_COLUMNS))
        ]
        self.jobid = _freeze(np.array(cols[0], dtype=object))

        self.codes: dict[str, np.ndarray] = {}
        self.uniques: dict[str, np.ndarray] = {}
        self._code_of: dict[str, dict[str, int]] = {}
        for i, dim in enumerate(DIMENSIONS, start=1):
            uniq, inverse = np.unique(np.array(cols[i], dtype=object),
                                      return_inverse=True)
            self.uniques[dim] = _freeze(uniq)
            self.codes[dim] = _freeze(inverse.astype(np.int32))
            self._code_of[dim] = {v: c for c, v in enumerate(uniq)}

        self.numeric: dict[str, np.ndarray] = {}
        for i, name in enumerate(FACT_COLUMNS, start=1 + len(DIMENSIONS)):
            self.numeric[name] = _freeze(np.array(cols[i], dtype=float))

        # One pass over the long-form metrics table (covering index
        # idx_metrics_covering serves this without touching the heap),
        # pivoted in numpy instead of a correlated subquery per metric.
        pos = {jobid: i for i, jobid in enumerate(self.jobid)}
        metric_cols = {m: np.full(n, np.nan) for m in SUMMARY_METRICS}
        n_metric_rows = 0
        for jobid, metric, value in conn.execute(
            "SELECT jobid, metric, value FROM job_metrics WHERE system=?",
            (system,),
        ):
            n_metric_rows += 1
            col = metric_cols.get(metric)
            if col is not None:
                col[pos[jobid]] = value
        for m, col in metric_cols.items():
            self.numeric[m] = _freeze(col)
        get_registry().counter("analytics.frame_rows_scanned").inc(
            n + n_metric_rows)

        self._decoded: dict[str, np.ndarray] = {}
        self._complete: dict[tuple[str, ...], np.ndarray] = {}

    # -- access ------------------------------------------------------------

    def decode(self, dim: str) -> np.ndarray:
        """The dimension as an object array (materialized once)."""
        out = self._decoded.get(dim)
        if out is None:
            out = self._decoded[dim] = _freeze(
                self.uniques[dim][self.codes[dim]]
            )
        return out

    def code_of(self, dim: str, value: str) -> int:
        """The integer code of one dimension value, or -1 if the value
        never occurs on this system."""
        return self._code_of[dim].get(value, -1)

    def complete_mask(self, metrics: tuple[str, ...]) -> np.ndarray:
        """Rows carrying every requested metric (the paper's analyses
        operate on fully summarized jobs)."""
        key = tuple(metrics)
        mask = self._complete.get(key)
        if mask is None:
            mask = np.ones(self.n_rows, dtype=bool)
            for m in key:
                mask &= ~np.isnan(self.numeric[m])
            self._complete[key] = _freeze(mask)
        return mask

    # -- delta refresh -----------------------------------------------------

    def extended(self, warehouse: Warehouse) -> "SystemFrame":
        """This frame plus every row appended since it was loaded.

        O(delta) by construction: only rows above the recorded rowid
        watermarks are fetched (the ``analytics.frame_rows_scanned``
        counter proves it); pre-existing rows are merged in from this
        frame's already-frozen arrays, never re-read from SQLite.
        Returns ``self`` (with advanced watermarks) when nothing was
        appended, else a new frame — the old one stays valid for any
        consumer still holding it.
        """
        conn = warehouse.connection
        jobs_hi = warehouse._max_rowid("jobs")
        metrics_hi = warehouse._max_rowid("job_metrics")
        dim_cols = ", ".join(DIMENSIONS)
        fact_cols = ", ".join(FACT_COLUMNS)
        rows = conn.execute(
            f"SELECT jobid, {dim_cols}, {fact_cols} FROM jobs"
            f" WHERE system=? AND rowid>? ORDER BY jobid",
            (self.system, self._jobs_hi),
        ).fetchall()
        metric_rows = conn.execute(
            "SELECT jobid, metric, value FROM job_metrics"
            " WHERE system=? AND rowid>?",
            (self.system, self._metrics_hi),
        ).fetchall()
        get_registry().counter("analytics.frame_rows_scanned").inc(
            len(rows) + len(metric_rows))
        if not rows and not metric_rows:
            self._jobs_hi, self._metrics_hi = jobs_hi, metrics_hi
            return self

        n_new = len(rows)
        cols = list(zip(*rows)) if rows else [
            [] for _ in range(1 + len(DIMENSIONS) + len(FACT_COLUMNS))
        ]
        new = object.__new__(SystemFrame)
        new.system = self.system
        new.n_rows = self.n_rows + n_new
        new._jobs_hi, new._metrics_hi = jobs_hi, metrics_hi
        new_jobid = np.array(cols[0], dtype=object)
        # Both halves are jobid-sorted, so a stable argsort of the
        # concatenation is a merge; the same permutation reorders every
        # column.
        order = np.argsort(np.concatenate([self.jobid, new_jobid]),
                           kind="stable")
        new.jobid = _freeze(
            np.concatenate([self.jobid, new_jobid])[order])

        new.codes = {}
        new.uniques = {}
        new._code_of = {}
        for i, dim in enumerate(DIMENSIONS, start=1):
            vals = np.array(cols[i], dtype=object)
            uniq = np.unique(np.concatenate([self.uniques[dim], vals]))
            remap = np.searchsorted(uniq, self.uniques[dim])
            old_codes = (remap[self.codes[dim]] if self.n_rows
                         else np.empty(0, dtype=np.int64))
            codes = np.concatenate(
                [old_codes, np.searchsorted(uniq, vals)])[order]
            new.uniques[dim] = _freeze(uniq)
            new.codes[dim] = _freeze(codes.astype(np.int32))
            new._code_of[dim] = {v: c for c, v in enumerate(uniq)}

        new.numeric = {}
        for i, name in enumerate(FACT_COLUMNS, start=1 + len(DIMENSIONS)):
            col = np.concatenate(
                [self.numeric[name], np.array(cols[i], dtype=float)])
            new.numeric[name] = _freeze(col[order])

        pos = {jobid: i for i, jobid in enumerate(new.jobid)}
        pad = np.full(n_new, np.nan)
        metric_cols = {
            m: np.concatenate([self.numeric[m], pad])[order]
            for m in SUMMARY_METRICS
        }
        for jobid, metric, value in metric_rows:
            col = metric_cols.get(metric)
            if col is not None:
                col[pos[jobid]] = value
        for m, col in metric_cols.items():
            new.numeric[m] = _freeze(col)

        new._decoded = {}
        new._complete = {}
        return new


#: Numeric job columns that carry facility time — the only columns a
#: range step can use to prove itself disjoint from appended data.
_TIME_COLUMNS = ("submit_time", "start_time", "end_time")


def _key_parts(key):
    """Every leaf value in a (possibly nested) memo key tuple."""
    for part in key:
        if isinstance(part, tuple):
            yield from _key_parts(part)
        else:
            yield part


def _time_range_steps(key):
    """Every ``("range", <time column>, lo, hi)`` step inside *key*."""
    if isinstance(key, tuple):
        if (len(key) == 4 and key[0] == "range"
                and key[1] in _TIME_COLUMNS):
            yield key
        for part in key:
            if isinstance(part, tuple):
                yield from _time_range_steps(part)


def _memo_survives(key, affected: set, series_changed: set,
                   spans: dict) -> bool:
    """Whether a memo entry provably cannot see the appended rows.

    Conservative by construction: a key survives only when it names no
    affected system at all, or when every affected system it names has
    an inclusive time-range filter step disjoint from that system's
    appended time span.  (System names are matched against every string
    in the key — a dimension *value* that collides with a system name
    merely over-drops, never under-drops.)
    """
    names = {p for p in _key_parts(key) if isinstance(p, str)}
    hit = affected & names
    if not hit:
        return True
    if hit & series_changed:
        return False
    steps = list(_time_range_steps(key))
    for system in hit:
        colspans = spans[system]
        # One disjoint step suffices: if every appended row fails that
        # filter, the memoized result cannot have changed.
        if not any((hi is not None and hi < colspans[col][0])
                   or (lo is not None and lo > colspans[col][1])
                   for _op, col, lo, hi in steps):
            return False
    return True


#: warehouse -> its live snapshot (dropped automatically when the
#: warehouse object dies; superseded when its data_version moves).
_SNAPSHOTS: "weakref.WeakKeyDictionary[Warehouse, WarehouseSnapshot]" = (
    weakref.WeakKeyDictionary()
)

#: Serializes snapshot lookup/refresh/publication: concurrent readers
#: that find the table stale must not race two refreshes.
_SNAP_LOCK = threading.Lock()


class WarehouseSnapshot:
    """The shared columnar image of one warehouse at one data version."""

    def __init__(self, warehouse: Warehouse):
        self._warehouse = warehouse
        self.stamp = warehouse.data_version
        self.generation = warehouse.generation
        self._frames: dict[str, SystemFrame] = {}
        self._series: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        self._info: dict[str, dict] = {}
        self._memo: dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0
        # Load lock: serializes lazy SQLite scans (shared connection,
        # no duplicated bulk work).  Memo lock: short-hold bookkeeping
        # for the entry store and hit/miss counts.
        self._load_lock = threading.RLock()
        self._memo_lock = threading.Lock()
        # Append-vs-rebuild bookkeeping: rowid high-waters plus the
        # warehouse's destruction counter and per-system series epochs.
        # If only rows above these appear later, :meth:`refresh` extends
        # in O(delta) instead of rebuilding.
        self._jobs_hi = warehouse._max_rowid("jobs")
        self._metrics_hi = warehouse._max_rowid("job_metrics")
        self._syslog_hi = warehouse._max_rowid("syslog_events")
        state = warehouse.change_state()
        self._destructive = state["destructive"]
        self._series_epochs = state["series_epochs"]

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def for_warehouse(cls, warehouse: Warehouse) -> "WarehouseSnapshot":
        """The memoized snapshot for *warehouse*, replaced iff its
        ``data_version`` moved since the last call (i.e. on ingest
        commit or any buffered write).  A stale snapshot is superseded
        by :meth:`refresh` — O(delta) after an append-only ingest, full
        rebuild after destructive writes — and the replacement is
        published atomically under one lock, so concurrent callers
        always get either the old consistent snapshot or the new one,
        never a half-refreshed hybrid."""
        with _SNAP_LOCK:
            snap = _SNAPSHOTS.get(warehouse)
            if snap is None:
                snap = cls(warehouse)
            elif snap.stamp != warehouse.data_version:
                snap = snap.refresh(warehouse)
            _SNAPSHOTS[warehouse] = snap
            return snap

    def refresh(self, warehouse: Warehouse) -> "WarehouseSnapshot":
        """The snapshot brought up to *warehouse*'s current data
        version — a **new object**; ``self`` is never mutated.

        Append-only delta (the common post-ingest case): every loaded
        frame is extended with just the appended rows, series whose
        epoch did not move stay loaded, and memo entries survive when
        their key provably cannot see the appended data — either no
        affected system appears in the key, or an inclusive time-range
        step is disjoint from the appended time span.  Anything
        destructive (row rewrites/deletes) falls back to a fresh
        snapshot.

        Returning a replacement instead of extending in place is the
        concurrency contract: a reader that resolved ``self`` before
        the refresh keeps one frozen, mutually consistent set of
        frames/series/memo entries for as long as it holds the
        reference — it can never observe frame A extended while frame
        B (or the memo pruned against the new rows) still describes
        the old generation.  Unchanged frames and surviving entries
        are shared by reference, so the O(delta) cost is unchanged.
        Returns ``self`` only when already current.
        """
        if self.stamp == warehouse.data_version:
            return self
        state = warehouse.change_state()
        if state["destructive"] != self._destructive:
            get_registry().counter("analytics.snapshot_rebuild").inc()
            return WarehouseSnapshot(warehouse)
        with span("analytics.snapshot_refresh"):
            conn = warehouse.connection
            jobs_hi = warehouse._max_rowid("jobs")
            metrics_hi = warehouse._max_rowid("job_metrics")
            syslog_hi = warehouse._max_rowid("syslog_events")

            # Appended-data time span per system and per time column,
            # from the rows above the old high-waters (GROUP BY keeps
            # this one indexed pass per table regardless of system
            # count).  Per-column spans matter: a lookback job can be
            # submitted days before it ends, and a union span would
            # needlessly kill entries filtered on a single column.
            spans: dict[str, dict[str, tuple[float, float]]] = {}

            def widen(system: str, col: str, lo: float, hi: float
                      ) -> None:
                cur = spans.setdefault(system, {}).get(col)
                spans[system][col] = (
                    (lo, hi) if cur is None
                    else (min(cur[0], lo), max(cur[1], hi)))

            frame_affected: set[str] = set()
            for system, *bounds in conn.execute(
                "SELECT system, MIN(submit_time), MAX(submit_time),"
                " MIN(start_time), MAX(start_time),"
                " MIN(end_time), MAX(end_time)"
                " FROM jobs WHERE rowid>? GROUP BY system",
                (self._jobs_hi,),
            ):
                for i, col in enumerate(_TIME_COLUMNS):
                    widen(system, col, bounds[2 * i], bounds[2 * i + 1])
                frame_affected.add(system)
            for (system,) in conn.execute(
                "SELECT DISTINCT system FROM job_metrics WHERE rowid>?",
                (self._metrics_hi,),
            ):
                if system not in frame_affected:
                    # Metrics without their job row cannot happen via
                    # the pipeline; treat as touching all of time.
                    for col in _TIME_COLUMNS:
                        widen(system, col, float("-inf"), float("inf"))
                    frame_affected.add(system)
            for system, lo, hi in conn.execute(
                "SELECT system, MIN(t), MAX(t) FROM syslog_events"
                " WHERE rowid>? GROUP BY system",
                (self._syslog_hi,),
            ):
                for col in _TIME_COLUMNS:
                    widen(system, col, lo, hi)

            series_changed = {
                s for s, epoch in state["series_epochs"].items()
                if epoch != self._series_epochs.get(s, 0)
            }
            affected = set(spans) | series_changed

            # Assemble the replacement without touching self: extended
            # frames for affected systems, everything else shared by
            # reference, memo filtered into a fresh dict.
            new = WarehouseSnapshot.__new__(WarehouseSnapshot)
            new._warehouse = warehouse
            with self._load_lock:
                new._frames = {
                    system: (frame.extended(warehouse)
                             if system in frame_affected else frame)
                    for system, frame in self._frames.items()
                }
                new._series = {
                    key: pair for key, pair in self._series.items()
                    if key[0] not in series_changed
                }
                new._info = dict(self._info)
            with self._memo_lock:
                new._memo = {
                    key: value for key, value in self._memo.items()
                    if _memo_survives(key, affected, series_changed,
                                      spans)
                }
                new.hits = self.hits
                new.misses = self.misses
            new._load_lock = threading.RLock()
            new._memo_lock = threading.Lock()
            new._jobs_hi = jobs_hi
            new._metrics_hi = metrics_hi
            new._syslog_hi = syslog_hi
            new._destructive = state["destructive"]
            new._series_epochs = state["series_epochs"]
            new.stamp = warehouse.data_version
            new.generation = warehouse.generation
            get_registry().counter("analytics.snapshot_refresh").inc()
        return new

    @classmethod
    def invalidate(cls, warehouse: Warehouse) -> None:
        """Explicitly drop the cached snapshot (benchmarks use this to
        measure the cold path; ingest does not need it — commits move
        the data version, which invalidates implicitly)."""
        with _SNAP_LOCK:
            _SNAPSHOTS.pop(warehouse, None)

    # -- data --------------------------------------------------------------

    def frame(self, system: str) -> SystemFrame:
        """The (lazily loaded) frame for *system*; double-checked under
        the load lock so concurrent readers share one bulk scan."""
        frame = self._frames.get(system)
        if frame is None:
            with self._load_lock:
                frame = self._frames.get(system)
                if frame is None:
                    with span("analytics.frame_load", system=system):
                        frame = SystemFrame(self._warehouse, system)
                    self._frames[system] = frame
        return frame

    def system_info(self, system: str) -> dict:
        """System facts (nodes, cores, peak TF), loaded once."""
        info = self._info.get(system)
        if info is None:
            with self._load_lock:
                info = self._info.get(system)
                if info is None:
                    info = self._warehouse.system_info(system)
                    self._info[system] = info
        return info

    def series(self, system: str,
               metric: str) -> tuple[np.ndarray, np.ndarray]:
        """One stored system series, loaded once and shared read-only."""
        key = (system, metric)
        pair = self._series.get(key)
        if pair is None:
            with self._load_lock:
                pair = self._series.get(key)
                if pair is None:
                    t, v = self._warehouse.series(system, metric)
                    pair = (_freeze(t), _freeze(v))
                    self._series[key] = pair
        return pair

    # -- memoization -------------------------------------------------------

    def cached(self, key: tuple, compute: Callable[[], Any]) -> Any:
        """Memoize *compute* under *key* for this snapshot's lifetime.

        Keys are built by callers as flat tuples of hashables — e.g.
        ``("group_by", system, base metrics, filter spec, group dims,
        metrics)``.  The warehouse generation is implicit: a new
        generation means a new snapshot, so stale entries can never be
        served.  With the cache disabled, *compute* runs every time.

        Thread-safe: lookup and hit/miss accounting happen under the
        memo lock, *compute* runs outside it (so concurrent misses on
        distinct keys don't serialize), and the store uses
        ``setdefault`` so the first finisher wins and every caller
        returns the same object.  ``hits + misses`` equals the number
        of calls exactly, under any interleaving.
        """
        if not _CACHE_ENABLED:
            return compute()
        registry = get_registry()
        with self._memo_lock:
            try:
                value = self._memo[key]
            except KeyError:
                self.misses += 1
            else:
                self.hits += 1
                registry.counter("analytics.cache_hits").inc()
                return value
        registry.counter("analytics.cache_misses").inc()
        value = compute()
        with self._memo_lock:
            return self._memo.setdefault(key, value)

    @property
    def cache_stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._memo)}
