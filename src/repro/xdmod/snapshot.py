"""Columnar analytics engine: one shared, immutable warehouse snapshot.

Every report and figure bench used to re-open the SQLite warehouse and
re-pivot the long-form ``job_metrics`` table independently.  The
job-specific monitoring literature (MPCDF, LIKWID Monitoring Stack) is
blunt that the *reporting* tier, not collection, is what must scale to
interactive many-user traffic — so this module makes the whole analytics
surface share one columnar image of the warehouse:

* :class:`SystemFrame` — one system's joined job+metrics table as column
  arrays, loaded with two bulk ``SELECT``\\ s (jobs, then one pass over
  ``job_metrics`` served by the covering index) instead of a correlated
  subquery per metric per job.  Dimension columns are
  dictionary-encoded: an ``int32`` code array plus the sorted unique
  values, so equality filters and group-bys run on integer arrays.
* :class:`WarehouseSnapshot` — the per-warehouse container: frames and
  series are loaded lazily, once, and memoized together with query and
  report results.  A snapshot is pinned to the warehouse's
  ``data_version`` (generation stamp + in-process mutation counter);
  any ingest commit bumps the stamp, and the next analytics access
  rebuilds from scratch.  Until then, every :class:`~repro.xdmod.query.
  JobQuery`, report, and figure bench on the same warehouse shares one
  scan.

The memo cache is keyed by ``(system, filter spec, group spec,
metrics)`` tuples supplied by the query layer; keys never embed array
data.  ``set_cache_enabled(False)`` turns memoization off globally
(the ``repro-report --no-report-cache`` escape hatch) without touching
the shared frames.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable

import numpy as np

from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import span

__all__ = [
    "DIMENSIONS",
    "FACT_COLUMNS",
    "SystemFrame",
    "WarehouseSnapshot",
    "set_cache_enabled",
    "cache_enabled",
]

#: The categorical job dimensions, dictionary-encoded in every frame.
DIMENSIONS = ("user", "account", "science_field", "app", "queue",
              "exit_status")

#: Numeric per-job facts carried by the ``jobs`` table itself.
FACT_COLUMNS = ("submit_time", "start_time", "end_time", "nodes", "cores",
                "node_hours")

_CACHE_ENABLED = True


def set_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable query+report memoization (frames stay
    shared either way)."""
    global _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)


def cache_enabled() -> bool:
    """Whether query/report memoization is currently on."""
    return _CACHE_ENABLED


def _freeze(a: np.ndarray) -> np.ndarray:
    """Snapshot arrays are shared across every consumer: make writes
    fail loudly instead of corrupting a neighbour's report."""
    a.flags.writeable = False
    return a


class SystemFrame:
    """One system's jobs as immutable column arrays.

    Rows are ordered by ``jobid`` (string sort), matching
    :meth:`Warehouse.job_table`.  All :data:`SUMMARY_METRICS` are loaded
    (NaN where a job has no stored value); the query layer selects the
    completeness subset it needs via :meth:`complete_mask`.
    """

    __slots__ = ("system", "n_rows", "jobid", "numeric", "codes", "uniques",
                 "_code_of", "_decoded", "_complete")

    def __init__(self, warehouse: Warehouse, system: str):
        self.system = system
        conn = warehouse.connection
        dim_cols = ", ".join(DIMENSIONS)
        fact_cols = ", ".join(FACT_COLUMNS)
        rows = conn.execute(
            f"SELECT jobid, {dim_cols}, {fact_cols} FROM jobs"
            f" WHERE system=? ORDER BY jobid", (system,)
        ).fetchall()
        n = self.n_rows = len(rows)
        cols = list(zip(*rows)) if rows else [
            [] for _ in range(1 + len(DIMENSIONS) + len(FACT_COLUMNS))
        ]
        self.jobid = _freeze(np.array(cols[0], dtype=object))

        self.codes: dict[str, np.ndarray] = {}
        self.uniques: dict[str, np.ndarray] = {}
        self._code_of: dict[str, dict[str, int]] = {}
        for i, dim in enumerate(DIMENSIONS, start=1):
            uniq, inverse = np.unique(np.array(cols[i], dtype=object),
                                      return_inverse=True)
            self.uniques[dim] = _freeze(uniq)
            self.codes[dim] = _freeze(inverse.astype(np.int32))
            self._code_of[dim] = {v: c for c, v in enumerate(uniq)}

        self.numeric: dict[str, np.ndarray] = {}
        for i, name in enumerate(FACT_COLUMNS, start=1 + len(DIMENSIONS)):
            self.numeric[name] = _freeze(np.array(cols[i], dtype=float))

        # One pass over the long-form metrics table (covering index
        # idx_metrics_covering serves this without touching the heap),
        # pivoted in numpy instead of a correlated subquery per metric.
        pos = {jobid: i for i, jobid in enumerate(self.jobid)}
        metric_cols = {m: np.full(n, np.nan) for m in SUMMARY_METRICS}
        for jobid, metric, value in conn.execute(
            "SELECT jobid, metric, value FROM job_metrics WHERE system=?",
            (system,),
        ):
            col = metric_cols.get(metric)
            if col is not None:
                col[pos[jobid]] = value
        for m, col in metric_cols.items():
            self.numeric[m] = _freeze(col)

        self._decoded: dict[str, np.ndarray] = {}
        self._complete: dict[tuple[str, ...], np.ndarray] = {}

    # -- access ------------------------------------------------------------

    def decode(self, dim: str) -> np.ndarray:
        """The dimension as an object array (materialized once)."""
        out = self._decoded.get(dim)
        if out is None:
            out = self._decoded[dim] = _freeze(
                self.uniques[dim][self.codes[dim]]
            )
        return out

    def code_of(self, dim: str, value: str) -> int:
        """The integer code of one dimension value, or -1 if the value
        never occurs on this system."""
        return self._code_of[dim].get(value, -1)

    def complete_mask(self, metrics: tuple[str, ...]) -> np.ndarray:
        """Rows carrying every requested metric (the paper's analyses
        operate on fully summarized jobs)."""
        key = tuple(metrics)
        mask = self._complete.get(key)
        if mask is None:
            mask = np.ones(self.n_rows, dtype=bool)
            for m in key:
                mask &= ~np.isnan(self.numeric[m])
            self._complete[key] = _freeze(mask)
        return mask


#: warehouse -> its live snapshot (dropped automatically when the
#: warehouse object dies; superseded when its data_version moves).
_SNAPSHOTS: "weakref.WeakKeyDictionary[Warehouse, WarehouseSnapshot]" = (
    weakref.WeakKeyDictionary()
)


class WarehouseSnapshot:
    """The shared columnar image of one warehouse at one data version."""

    def __init__(self, warehouse: Warehouse):
        self._warehouse = warehouse
        self.stamp = warehouse.data_version
        self.generation = warehouse.generation
        self._frames: dict[str, SystemFrame] = {}
        self._series: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}
        self._info: dict[str, dict] = {}
        self._memo: dict[tuple, Any] = {}
        self.hits = 0
        self.misses = 0

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def for_warehouse(cls, warehouse: Warehouse) -> "WarehouseSnapshot":
        """The memoized snapshot for *warehouse*, rebuilt iff its
        ``data_version`` moved since the last call (i.e. on ingest
        commit or any buffered write)."""
        snap = _SNAPSHOTS.get(warehouse)
        if snap is None or snap.stamp != warehouse.data_version:
            snap = cls(warehouse)
            _SNAPSHOTS[warehouse] = snap
        return snap

    @classmethod
    def invalidate(cls, warehouse: Warehouse) -> None:
        """Explicitly drop the cached snapshot (benchmarks use this to
        measure the cold path; ingest does not need it — commits move
        the data version, which invalidates implicitly)."""
        _SNAPSHOTS.pop(warehouse, None)

    # -- data --------------------------------------------------------------

    def frame(self, system: str) -> SystemFrame:
        frame = self._frames.get(system)
        if frame is None:
            with span("analytics.frame_load", system=system):
                frame = self._frames[system] = SystemFrame(
                    self._warehouse, system)
        return frame

    def system_info(self, system: str) -> dict:
        info = self._info.get(system)
        if info is None:
            info = self._info[system] = self._warehouse.system_info(system)
        return info

    def series(self, system: str,
               metric: str) -> tuple[np.ndarray, np.ndarray]:
        """One stored system series, loaded once and shared read-only."""
        key = (system, metric)
        pair = self._series.get(key)
        if pair is None:
            t, v = self._warehouse.series(system, metric)
            pair = self._series[key] = (_freeze(t), _freeze(v))
        return pair

    # -- memoization -------------------------------------------------------

    def cached(self, key: tuple, compute: Callable[[], Any]) -> Any:
        """Memoize *compute* under *key* for this snapshot's lifetime.

        Keys are built by callers as flat tuples of hashables — e.g.
        ``("group_by", system, base metrics, filter spec, group dims,
        metrics)``.  The warehouse generation is implicit: a new
        generation means a new snapshot, so stale entries can never be
        served.  With the cache disabled, *compute* runs every time.
        """
        if not _CACHE_ENABLED:
            return compute()
        try:
            value = self._memo[key]
        except KeyError:
            self.misses += 1
            get_registry().counter("analytics.cache_misses").inc()
            value = self._memo[key] = compute()
            return value
        self.hits += 1
        get_registry().counter("analytics.cache_hits").inc()
        return value

    @property
    def cache_stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._memo)}
