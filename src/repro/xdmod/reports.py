"""Per-stakeholder report generators (paper §4.3).

One class per stakeholder, each producing (a) structured data and (b) a
rendered plain-text report built from the shared analytics:

* :class:`UserReport` — own usage profile vs facility average, anomalous
  patterns, failure profile (§4.3.1);
* :class:`DeveloperReport` — an application's comparative profile and
  per-system variability (§4.3.2, Figure 3);
* :class:`SupportStaffReport` — wasted node-hours, the circled outlier
  and its profile (§4.3.3, Figures 4/5);
* :class:`AdminReport` — workload characterization, failure diagnostics,
  persistence forecast (§4.3.4, Table 1);
* :class:`ResourceManagerReport` — system-level resource-use reports
  (§4.3.5, Figures 7-12);
* :class:`FundingAgencyReport` — by-science-field accountability rollups
  (§4.3.6).

All reports on one warehouse share the columnar
:class:`~repro.xdmod.snapshot.WarehouseSnapshot` (one warehouse scan
for the whole bouquet) and memoize their rendered text on it, keyed by
``(report kind, system, target)``; an ingest commit moves the
warehouse's generation stamp and retires every cached report at once.
"""

from __future__ import annotations


import numpy as np

from repro.ingest.warehouse import Warehouse
from repro.telemetry.trace import span
from repro.util.tables import render_kv, render_table
from repro.util.textchart import radar_text, scatter_text, series_text
from repro.xdmod.efficiency import EfficiencyAnalysis
from repro.xdmod.persistence import PersistenceAnalysis
from repro.xdmod.profiles import Profile, UsageProfiler
from repro.xdmod.query import JobQuery
from repro.xdmod.snapshot import WarehouseSnapshot
from repro.xdmod.timeseries import SystemTimeseries

__all__ = [
    "UserReport",
    "DeveloperReport",
    "SupportStaffReport",
    "AdminReport",
    "ResourceManagerReport",
    "FundingAgencyReport",
]


def _profile_block(profile: Profile, title: str) -> str:
    return f"{title}\n{radar_text(profile.values)}"


class _BaseReport:
    def __init__(self, warehouse: Warehouse, system: str,
                 snapshot: WarehouseSnapshot | None = None):
        self.warehouse = warehouse
        self.system = system
        # Passing an explicit snapshot pins the whole report (and every
        # sub-query) to one frozen view; the service layer does this so
        # a report never straddles a mid-request refresh.
        self._snapshot = (snapshot if snapshot is not None
                          else WarehouseSnapshot.for_warehouse(warehouse))
        self.query = JobQuery(warehouse, system, snapshot=self._snapshot)
        self.profiler = UsageProfiler(self.query)

    def render(self, *target: str) -> str:
        """The rendered report, memoized per (kind, system, target) on
        the warehouse snapshot."""
        key = ("report", type(self).__name__, self.system, target)

        def compute() -> str:
            # Only a cache miss opens a span: a memo hit costs nothing
            # and would drown the trace tree in no-op entries.
            with span("report.render", kind=type(self).__name__,
                      system=self.system):
                return self._render(*target)

        return self._snapshot.cached(key, compute)


class UserReport(_BaseReport):
    """§4.3.1: resource-use profile, anomalies and failures for one user."""

    def generate(self, user: str) -> dict:
        profile = self.profiler.profile("user", user)
        sub = self.query.filter(user=user)
        exits = sub.group_by("exit_status", metrics=())
        failure_profile = {g.key: g.job_count for g in exits}
        completed = failure_profile.get("completed", 0)
        total = sum(failure_profile.values())
        return {
            "user": user,
            "profile": profile,
            "job_count": len(sub),
            "node_hours": sub.node_hours,
            "anomalous_metrics": profile.anomalous(),
            "failure_profile": failure_profile,
            "completion_rate": completed / total if total else float("nan"),
        }

    def _render(self, user: str) -> str:
        d = self.generate(user)
        parts = [
            render_kv(
                {
                    "user": user,
                    "jobs": d["job_count"],
                    "node hours": f"{d['node_hours']:.1f}",
                    "completion rate": f"{d['completion_rate']:.1%}",
                },
                title=f"USER REPORT — {user} on {self.system}",
            ),
            _profile_block(d["profile"],
                           "usage vs facility average (1.0 = typical):"),
        ]
        if d["anomalous_metrics"]:
            parts.append(
                "ANOMALOUS (>=3x facility average): "
                + ", ".join(
                    f"{m} ({v:.1f}x)"
                    for m, v in d["anomalous_metrics"].items()
                )
            )
        return "\n\n".join(parts)


class DeveloperReport(_BaseReport):
    """§4.3.2: an application's comparative profile (Figure 3's data)."""

    def generate(self, app: str) -> dict:
        profile = self.profiler.profile("app", app)
        sub = self.query.filter(app=app)
        idle = sub.column("cpu_idle")
        return {
            "app": app,
            "profile": profile,
            "job_count": len(sub),
            "node_hours": sub.node_hours,
            "users": len(np.unique(sub.column("user"))),
            "cpu_idle_mean": float(idle.mean()),
            "cpu_idle_std": float(idle.std()),
            "abnormal_rate": float(
                (sub.column("exit_status") != "completed").mean()
            ),
        }

    def _render(self, app: str) -> str:
        d = self.generate(app)
        return "\n\n".join([
            render_kv(
                {
                    "application": app,
                    "jobs": d["job_count"],
                    "distinct users": d["users"],
                    "node hours": f"{d['node_hours']:.1f}",
                    "cpu idle": f"{d['cpu_idle_mean']:.1%} "
                                f"(± {d['cpu_idle_std']:.1%})",
                    "abnormal exits": f"{d['abnormal_rate']:.1%}",
                },
                title=f"DEVELOPER REPORT — {app} on {self.system}",
            ),
            _profile_block(d["profile"],
                           "usage vs facility average (1.0 = typical):"),
        ])

    def compare_systems(self, app: str,
                        other: "DeveloperReport") -> dict[str, Profile]:
        """Figure 3: the same code's profile on two systems."""
        return {
            self.system: self.generate(app)["profile"],
            other.system: other.generate(app)["profile"],
        }


class SupportStaffReport(_BaseReport):
    """§4.3.3: Figure 4's scatter plus the circled user's Figure 5 profile."""

    def generate(self) -> dict:
        eff = EfficiencyAnalysis(self.query)
        worst = eff.worst_heavy_user()
        return {
            "efficiency": eff,
            "facility_efficiency": eff.facility_efficiency,
            "worst_user": worst,
            "worst_profile": self.profiler.profile("user", worst.user),
            "users_above_line": eff.users_above_line(),
        }

    def _render(self) -> str:
        d = self.generate()
        eff: EfficiencyAnalysis = d["efficiency"]
        x, y, _ = eff.scatter()
        worst = d["worst_user"]
        parts = [
            render_kv(
                {
                    "facility efficiency": f"{d['facility_efficiency']:.1%}",
                    "users above line": len(d["users_above_line"]),
                    "circled user": worst.user,
                    "circled idle fraction": f"{worst.idle_fraction:.1%}",
                    "circled node hours": f"{worst.node_hours:.0f}",
                },
                title=f"SUPPORT STAFF REPORT — {self.system}",
            ),
            "wasted vs total node-hours per user (log-log; O = circled):\n"
            + scatter_text(
                x, y, logx=True, logy=True,
                overlay={(worst.node_hours, worst.wasted_node_hours): "O"},
            ),
            _profile_block(d["worst_profile"],
                           f"circled user {worst.user} profile:"),
        ]
        return "\n\n".join(parts)


class AdminReport(_BaseReport):
    """§4.3.4: workload characterization, failures, scheduling
    effectiveness, persistence forecast."""

    def generate(self) -> dict:
        from repro.xdmod.characterization import WorkloadCharacterization
        from repro.xdmod.scheduling import SchedulingAnalysis

        exits = self.query.group_by("exit_status", metrics=())
        queues = self.query.group_by("queue", metrics=("cpu_idle",))
        persistence = PersistenceAnalysis(self.warehouse, self.system,
                                          snapshot=self._snapshot)
        characterization = WorkloadCharacterization(self.query)
        return {
            "exit_profile": {g.key: g.job_count for g in exits},
            "queues": queues,
            "persistence_table": persistence.table(),
            "combined_fit": persistence.combined_fit(),
            "size_spectrum": characterization.size_spectrum(),
            "concentration": characterization.concentration(),
            "scheduling": SchedulingAnalysis(self.query).by_size(),
        }

    def _render(self) -> str:
        d = self.generate()
        rows = []
        for row in d["persistence_table"]:
            r = {"metric": row.metric}
            r.update({
                f"{off}min": f"{ratio:.3f}"
                for off, ratio in zip(row.offsets_min, row.ratios)
            })
            r["fit R^2"] = f"{row.fit_r_squared:.3f}"
            rows.append(r)
        cols = ["metric"] + [f"{o}min" for o in d["persistence_table"][0].offsets_min] + ["fit R^2"]
        size_rows = [
            {"nodes": b.label, "jobs": b.job_count,
             "node-hour share": f"{b.node_hour_share:.1%}"}
            for b in d["size_spectrum"]
        ]
        sched_rows = [
            {"class": c.key, "jobs": c.job_count,
             "median wait (h)": f"{c.median_wait_h:.2f}",
             "bounded slowdown": f"{c.mean_bounded_slowdown:.1f}"}
            for c in d["scheduling"]
        ]
        conc = d["concentration"]
        return "\n\n".join([
            render_kv(
                {
                    "exit profile": ", ".join(
                        f"{k}={v}" for k, v in sorted(d["exit_profile"].items())
                    ),
                    "combined persistence fit": d["combined_fit"].summary(),
                    "usage concentration": (
                        f"top 5% of users hold "
                        f"{conc['top_5pct_share']:.0%} of node-hours "
                        f"(Gini {conc['gini']:.2f})"
                    ),
                },
                title=f"SYSTEMS ADMIN REPORT — {self.system}",
            ),
            render_table(rows, cols, title="Persistence (Table 1)"),
            render_table(size_rows, ["nodes", "jobs", "node-hour share"],
                         title="Job-size spectrum"),
            render_table(sched_rows,
                         ["class", "jobs", "median wait (h)",
                          "bounded slowdown"],
                         title="Scheduling effectiveness by size class"),
        ])


class ResourceManagerReport(_BaseReport):
    """§4.3.5: system-level resource-use reports (Figures 7-12 data)."""

    def generate(self) -> dict:
        ts = SystemTimeseries(self.warehouse, self.system,
                              snapshot=self._snapshot)
        by_field = self.query.group_by(
            "science_field", metrics=("mem_used", "cpu_idle")
        )
        info = self.warehouse.system_info(self.system)
        return {
            "timeseries": ts,
            "by_field": by_field,
            "mem_per_core_by_field": {
                g.key: g.mean("mem_used") / info["cores_per_node"]
                for g in by_field
            },
            "flops_fraction_of_peak": ts.flops_fraction_of_peak(),
            "memory_fraction": ts.memory_fraction_of_capacity(),
        }

    def _render(self) -> str:
        d = self.generate()
        ts: SystemTimeseries = d["timeseries"]
        active = ts.active_nodes()
        flops = ts.flops()
        mem = ts.memory_per_node()
        field_rows = [
            {"science field": g.key,
             "node hours": f"{g.node_hours:.0f}",
             "mem/core GB": f"{d['mem_per_core_by_field'][g.key]:.2f}"}
            for g in d["by_field"][:8]
        ]
        return "\n\n".join([
            render_kv(
                {
                    "mean FLOPS": f"{flops.mean:.1f} TF "
                                  f"({d['flops_fraction_of_peak']:.1%} of peak)",
                    "mean memory/node": f"{mem.mean:.1f} GB "
                                        f"({d['memory_fraction']:.1%} of capacity)",
                    "active nodes (mean)": f"{active.mean:.0f}",
                },
                title=f"RESOURCE MANAGER REPORT — {self.system}",
            ),
            series_text(active.times, active.values, label="active nodes",
                        fmt=".0f"),
            series_text(flops.times, flops.values, label="system TF"),
            series_text(mem.times, mem.values, label="GB/node"),
            render_table(field_rows,
                         ["science field", "node hours", "mem/core GB"],
                         title="Memory per core by parent science (Fig 7a)"),
        ])


class FundingAgencyReport(_BaseReport):
    """§4.3.6: accountability rollups by discipline and application."""

    def generate(self) -> dict:
        by_field = self.query.group_by("science_field",
                                       metrics=("cpu_idle",))
        by_app = self.query.group_by("app", metrics=("cpu_idle",))
        total_nh = self.query.node_hours
        effective = sum(
            g.node_hours * (1 - g.mean("cpu_idle")) for g in by_field
        )
        return {
            "by_field": by_field,
            "by_app": by_app[:10],
            "total_node_hours": total_nh,
            "effective_fraction": effective / total_nh if total_nh else 0.0,
        }

    def _render(self) -> str:
        d = self.generate()
        field_rows = [
            {"science field": g.key,
             "node hours": f"{g.node_hours:.0f}",
             "share": f"{g.node_hours / d['total_node_hours']:.1%}",
             "efficiency": f"{1 - g.mean('cpu_idle'):.1%}"}
            for g in d["by_field"]
        ]
        return "\n\n".join([
            render_kv(
                {
                    "total node hours": f"{d['total_node_hours']:.0f}",
                    "effectively applied": f"{d['effective_fraction']:.1%}",
                },
                title=f"FUNDING AGENCY REPORT — {self.system}",
            ),
            render_table(
                field_rows,
                ["science field", "node hours", "share", "efficiency"],
                title="Resource use by discipline",
            ),
        ])
