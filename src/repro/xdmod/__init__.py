"""XDMoD-style analytics and reporting over the SUPReMM warehouse.

Implements the paper's analysis surface: the eight key metrics and their
normalized usage profiles (Figures 2/3/5), the wasted-node-hour efficiency
analysis (Figure 4), the persistence/forecastability model (Table 1,
Figure 6), system-level reports and time series (Figures 7-12), the
correlation analysis that selected the key metrics (§4.2), and the
per-stakeholder report generators (§4.3).
"""

from repro.xdmod.appkernels import (
    DEFAULT_KERNELS,
    AppKernelMonitor,
    AppKernelSpec,
    PerfRegression,
)
from repro.xdmod.bouquet import BouquetAnalysis
from repro.xdmod.characterization import WorkloadCharacterization
from repro.xdmod.correlation import correlation_matrix, select_independent
from repro.xdmod.density import metric_density, series_density
from repro.xdmod.efficiency import EfficiencyAnalysis, UserEfficiency
from repro.xdmod.jobview import JobTimeline, job_timeline
from repro.xdmod.metrics import KEY_METRICS, METRIC_INFO, MetricInfo
from repro.xdmod.persistence import PERSISTENCE_METRICS, PersistenceAnalysis
from repro.xdmod.profiles import UsageProfiler
from repro.xdmod.query import GroupResult, JobQuery
from repro.xdmod.realm import SupremmRealm
from repro.xdmod.reports import (
    AdminReport,
    DeveloperReport,
    FundingAgencyReport,
    ResourceManagerReport,
    SupportStaffReport,
    UserReport,
)
from repro.xdmod.scheduling import SchedulingAnalysis
from repro.xdmod.snapshot import (
    WarehouseSnapshot,
    cache_enabled,
    set_cache_enabled,
)
from repro.xdmod.timeseries import SystemTimeseries
from repro.xdmod.trends import TrendAnalysis, TrendResult

__all__ = [
    "METRIC_INFO",
    "MetricInfo",
    "KEY_METRICS",
    "WarehouseSnapshot",
    "cache_enabled",
    "set_cache_enabled",
    "JobQuery",
    "GroupResult",
    "correlation_matrix",
    "select_independent",
    "UsageProfiler",
    "EfficiencyAnalysis",
    "UserEfficiency",
    "PersistenceAnalysis",
    "PERSISTENCE_METRICS",
    "metric_density",
    "series_density",
    "SystemTimeseries",
    "SupremmRealm",
    "TrendAnalysis",
    "TrendResult",
    "SchedulingAnalysis",
    "WorkloadCharacterization",
    "BouquetAnalysis",
    "JobTimeline",
    "job_timeline",
    "AppKernelMonitor",
    "AppKernelSpec",
    "DEFAULT_KERNELS",
    "PerfRegression",
    "UserReport",
    "DeveloperReport",
    "SupportStaffReport",
    "AdminReport",
    "ResourceManagerReport",
    "FundingAgencyReport",
]
