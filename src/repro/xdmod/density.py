"""Kernel-density distributions — Figures 10 and 12.

The paper shows kernel densities "rather than a histogram in order to
avoid making binning choices" (Scott 1992); we use our own Gaussian KDE
with Scott's rule (:mod:`repro.util.kde`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.warehouse import Warehouse
from repro.util.kde import GaussianKDE
from repro.xdmod.query import JobQuery

__all__ = ["DensityCurve", "series_density", "metric_density"]


@dataclass(frozen=True)
class DensityCurve:
    """One estimated density, ready to print or plot."""

    label: str
    grid: np.ndarray
    density: np.ndarray
    mean: float
    mode: float

    def fraction_above(self, x: float) -> float:
        """Mass above *x* (e.g. "negligible usage above 16 GB", Fig. 12)."""
        sel = self.grid >= x
        if not sel.any():
            return 0.0
        return float(np.trapezoid(self.density[sel], self.grid[sel]))


def _curve(label: str, values: np.ndarray, weights=None,
           n_grid: int = 512, clip_negative: bool = True) -> DensityCurve:
    kde = GaussianKDE(values, weights=weights)
    grid = kde.grid(n_grid)
    if clip_negative:
        # Physical quantities (TF, GB) cannot be negative; keep the grid
        # non-negative so printed curves do not show impossible mass.
        grid = grid[grid >= 0.0]
        if grid.size < 2:
            grid = np.linspace(0.0, float(values.max()) * 1.1, n_grid)
    dens = kde(grid)
    if weights is None:
        mean = float(np.mean(values))
    else:
        w = np.asarray(weights, dtype=float)
        mean = float(np.sum(values * w) / w.sum())
    return DensityCurve(
        label=label, grid=grid, density=dens, mean=mean,
        mode=float(grid[int(np.argmax(dens))]),
    )


def series_density(warehouse: Warehouse, system: str, series_name: str,
                   label: str | None = None) -> DensityCurve:
    """Density of a system-level series (Figure 10: flops_tf)."""
    from repro.xdmod.snapshot import WarehouseSnapshot
    _, values = WarehouseSnapshot.for_warehouse(warehouse).series(
        system, series_name)
    return _curve(label or series_name, values)


def metric_density(query: JobQuery, metric: str,
                   weight_by_node_hours: bool = True,
                   label: str | None = None) -> DensityCurve:
    """Density of a per-job metric (Figure 12: mem_used / mem_used_max),
    node-hour weighted by default per the paper's §4.1 convention."""
    values = query.column(metric)
    if values.size < 2:
        raise ValueError(f"not enough jobs for a density of {metric!r}")
    weights = query.column("node_hours") if weight_by_node_hours else None
    return _curve(label or metric, values, weights=weights)
