"""Normalized usage profiles — the radar charts of Figures 2, 3 and 5.

A profile divides an entity's node-hour-weighted mean of each key metric
by the facility-wide weighted mean, so "the typical user/application is a
perfect octagon at 1.0": values above one indicate heavier-than-average
use of that resource.

The weighted means behind each profile come from :class:`JobQuery` and
are memoized on the shared warehouse snapshot, so building many profiles
(or the same profile from several reports) computes each facility and
per-entity mean once per warehouse generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ingest.summarize import KEY_METRICS
from repro.xdmod.query import JobQuery

__all__ = ["Profile", "UsageProfiler"]


@dataclass(frozen=True)
class Profile:
    """One entity's normalized usage profile."""

    entity: str
    dimension: str
    values: dict[str, float]      # metric -> ratio vs facility average
    raw: dict[str, float]         # metric -> weighted mean (native units)
    node_hours: float
    job_count: int

    def dominant_metric(self) -> str:
        """The metric this entity uses most heavily relative to average."""
        return max(self.values, key=lambda m: self.values[m])

    def anomalous(self, threshold: float = 3.0) -> dict[str, float]:
        """Metrics at least *threshold* times the facility average."""
        return {m: v for m, v in self.values.items() if v >= threshold}


class UsageProfiler:
    """Builds normalized profiles against one system's job mix.

    Parameters
    ----------
    query:
        Base query (already filtered if a sub-population is intended —
        e.g. normalize MD codes against all jobs, as the paper does).
    metrics:
        Metric set; defaults to the paper's eight key metrics.
    """

    def __init__(self, query: JobQuery, metrics: tuple[str, ...] = KEY_METRICS):
        self.query = query
        self.metrics = metrics
        self.facility_means = query.weighted_means(metrics)
        for m, v in self.facility_means.items():
            if v == 0:
                raise ValueError(
                    f"facility mean of {m} is zero; profiles undefined"
                )

    def profile(self, dimension: str, value: str) -> Profile:
        """Normalized profile of one user/app/field/account."""
        sub = self.query.filter(**{dimension: value})
        if len(sub) == 0:
            raise ValueError(f"no jobs for {dimension}={value!r}")
        raw = sub.weighted_means(self.metrics)
        return Profile(
            entity=value,
            dimension=dimension,
            values={m: raw[m] / self.facility_means[m] for m in self.metrics},
            raw=raw,
            node_hours=sub.node_hours,
            job_count=len(sub),
        )

    def top_profiles(self, dimension: str, n: int) -> list[Profile]:
        """Profiles of the *n* heaviest consumers (Figure 2: 5 heavy
        users of Ranger)."""
        return [
            self.profile(dimension, key)
            for key in self.query.top(dimension, n)
        ]

    def compare(self, dimension: str, values: tuple[str, ...]) -> dict[str, Profile]:
        """Side-by-side profiles (Figure 3: NAMD vs AMBER vs GROMACS)."""
        return {v: self.profile(dimension, v) for v in values}
