"""System-level time series — Figures 7b/7c, 8, 9 and 11.

Thin retrieval/summary layer over the warehouse's ``system_series`` table:
each accessor returns the raw (t, v) pair plus the summary facts the paper
quotes (mean vs peak, fraction of benchmarked peak, dips to zero).

Series are read through the shared
:class:`~repro.xdmod.snapshot.WarehouseSnapshot`, so every report on the
same warehouse generation touches SQLite once per series, total; the
returned arrays are shared read-only views.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.warehouse import Warehouse
from repro.xdmod.snapshot import WarehouseSnapshot

__all__ = ["SeriesSummary", "SystemTimeseries"]


@dataclass(frozen=True)
class SeriesSummary:
    """One series with its headline statistics."""

    name: str
    times: np.ndarray
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def peak(self) -> float:
        return float(self.values.max())

    @property
    def minimum(self) -> float:
        return float(self.values.min())

    def fraction_of(self, reference: float) -> float:
        """Mean as a fraction of a reference (e.g. 579 TF peak)."""
        if reference <= 0:
            raise ValueError("reference must be positive")
        return self.mean / reference

    def time_at_zero_fraction(self, eps: float = 1e-9) -> float:
        """Fraction of samples at (essentially) zero — the outage dips."""
        return float(np.mean(self.values <= eps))


class SystemTimeseries:
    """Accessors for one system's stored series."""

    def __init__(self, warehouse: Warehouse, system: str,
                 snapshot: WarehouseSnapshot | None = None):
        self.warehouse = warehouse
        self.system = system
        self._snapshot = (snapshot if snapshot is not None
                          else WarehouseSnapshot.for_warehouse(warehouse))
        self.info = self._snapshot.system_info(system)

    def _get(self, name: str) -> SeriesSummary:
        t, v = self._snapshot.series(self.system, name)
        return SeriesSummary(name=name, times=t, values=v)

    def active_nodes(self) -> SeriesSummary:
        """Figure 8: nodes up over time."""
        return self._get("active_nodes")

    def flops(self) -> SeriesSummary:
        """Figure 9: system FLOPS in TF."""
        return self._get("flops_tf")

    def memory_per_node(self) -> SeriesSummary:
        """Figure 11: mean memory used per active node, GB."""
        return self._get("mem_used_gb_per_node")

    def cpu_hours_split(self) -> dict[str, SeriesSummary]:
        """Figure 7b: user/system/idle CPU fractions over time."""
        return {
            name: self._get(f"cpu_{name}_frac")
            for name in ("user", "sys", "idle")
        }

    def lustre_rates(self) -> dict[str, SeriesSummary]:
        """Figure 7c: per-filesystem aggregate write rates (MB/s)."""
        out = {}
        for fs in ("scratch", "work", "share"):
            name = f"io_{fs}_write_mb"
            try:
                out[fs] = self._get(name)
            except KeyError:
                continue  # LS4 has no share mount
        if not out:
            raise KeyError(f"no Lustre series for {self.system}")
        return out

    def flops_fraction_of_peak(self) -> float:
        """Figure 9's headline: measured mean vs benchmarked peak."""
        return self.flops().fraction_of(self.info["peak_tflops"])

    def memory_fraction_of_capacity(self) -> float:
        """Figure 11's headline: mean memory vs installed GB/node."""
        return self.memory_per_node().mean / self.info["mem_gb_per_node"]
