"""Metric metadata registry.

The paper's §4.2 defines eight key metrics chosen as "the smallest
independent set of metrics that describe the execution behavior of the job
mix"; ``KEY_METRICS`` (re-exported from the summarizer, which owns the
storage keys) lists them in radar-chart order.  This module adds display
metadata and the system-series naming used by the time-series analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ingest.summarize import KEY_METRICS, SUMMARY_METRICS

__all__ = ["MetricInfo", "METRIC_INFO", "KEY_METRICS", "SERIES_NAMES"]


@dataclass(frozen=True)
class MetricInfo:
    """Display metadata for one job-level metric."""

    name: str
    label: str
    unit: str
    description: str
    lower_is_better: bool = False


METRIC_INFO: dict[str, MetricInfo] = {
    m.name: m
    for m in [
        MetricInfo(
            "cpu_idle", "CPU idle", "fraction",
            "Fraction of CPU time not used by the job in user space or by "
            "the system.", lower_is_better=True,
        ),
        MetricInfo("cpu_user", "CPU user", "fraction",
                   "Fraction of CPU time in user space."),
        MetricInfo("cpu_sys", "CPU system", "fraction",
                   "Fraction of CPU time in the kernel."),
        MetricInfo("cpu_flops", "FLOPS", "GF/s/node",
                   "Floating-point rate from the hardware counters "
                   "(SSE FLOPS on AMD; FP_COMP_OPS-derived on Intel)."),
        MetricInfo("mem_used", "Memory used", "GB/node",
                   "Per-node memory used, including OS buffer/page cache."),
        MetricInfo("mem_used_max", "Memory used (max)", "GB/node",
                   "Peak observed memory over all nodes and samples."),
        MetricInfo("io_scratch_write", "Scratch write", "MB/s/node",
                   "Write rate to the purged, large-quota Lustre scratch."),
        MetricInfo("io_scratch_read", "Scratch read", "MB/s/node",
                   "Read rate from Lustre scratch."),
        MetricInfo("io_work_write", "Work write", "MB/s/node",
                   "Write rate to the non-purged, 200 GB-quota Lustre work."),
        MetricInfo("io_work_read", "Work read", "MB/s/node",
                   "Read rate from Lustre work."),
        MetricInfo("io_share_write", "Share write", "MB/s/node",
                   "Write rate to the shared Lustre mount."),
        MetricInfo("io_share_read", "Share read", "MB/s/node",
                   "Read rate from the shared Lustre mount."),
        MetricInfo("net_ib_tx", "IB transmit", "MB/s/node",
                   "InfiniBand port transmit rate (MPI + Lustre)."),
        MetricInfo("net_ib_rx", "IB receive", "MB/s/node",
                   "InfiniBand port receive rate."),
        MetricInfo("net_lnet_tx", "lnet transmit", "MB/s/node",
                   "Lustre networking transmit rate."),
        MetricInfo("net_lnet_rx", "lnet receive", "MB/s/node",
                   "Lustre networking receive rate."),
    ]
}

_missing = set(SUMMARY_METRICS) - set(METRIC_INFO)
if _missing:  # pragma: no cover - import-time schema guard
    raise RuntimeError(f"metrics without registry info: {_missing}")

#: Canonical system-series names stored in the warehouse.
SERIES_NAMES: dict[str, str] = {
    "active_nodes": "count of up nodes (Figure 8)",
    "flops_tf": "system FLOPS in TF (Figures 9/10)",
    "mem_used_gb_per_node": "mean memory per active node, GB (Figure 11)",
    "cpu_idle_frac": "system CPU idle fraction",
    "cpu_user_frac": "system CPU user fraction",
    "cpu_sys_frac": "system CPU system fraction",
    "io_scratch_write_mb": "aggregate scratch write, MB/s (Figure 7c)",
    "io_work_write_mb": "aggregate work write, MB/s (Figure 7c)",
    "io_share_write_mb": "aggregate share write, MB/s (Figure 7c)",
    "net_ib_tx_mb": "mean per-node IB transmit, MB/s",
    "busy_nodes": "count of nodes running jobs",
}
