"""Application kernels: XDMoD's proactive performance auditing.

The XDMoD framework the paper builds on (its reference [2], Furlani et
al.) runs *application kernels* — small, fixed benchmark jobs submitted
on a regular cadence under a dedicated account — and watches their
metrics over time: a step change means the software stack, filesystem,
or interconnect changed underneath the users.  The paper's §4.3.4 names
"evaluating the efficiency and effectiveness of new versions of the
system software stack" as an admin task this tool chain supports; app
kernels are how XDMoD does it quantitatively.

This module provides the kernel specs, the request injector (the cron
job that submits them), and the control-chart monitor that detects
regressions, plus :class:`PerfRegression` — the facility-side fault
injector used to prove the monitor catches a degraded stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FacilityConfig
from repro.scheduler.job import JobRequest
from repro.util.rng import stable_hash64
from repro.workload.applications import get_app
from repro.workload.users import UserProfile

__all__ = [
    "KERNEL_USER",
    "AppKernelSpec",
    "DEFAULT_KERNELS",
    "PerfRegression",
    "kernel_user_profile",
    "kernel_requests",
    "ControlChart",
    "AppKernelMonitor",
]

#: The dedicated account the kernels run under (never a real user).
KERNEL_USER = "appkernel"


@dataclass(frozen=True)
class AppKernelSpec:
    """One benchmark kernel: a fixed configuration of a known code."""

    name: str
    app: str
    nodes: int
    runtime_minutes: float = 30.0
    cadence_hours: float = 12.0

    def __post_init__(self):
        get_app(self.app)  # validate the tag early
        if self.nodes < 1 or self.runtime_minutes <= 0:
            raise ValueError(f"kernel {self.name}: bad geometry")
        if self.cadence_hours <= 0:
            raise ValueError(f"kernel {self.name}: bad cadence")

    @property
    def account(self) -> str:
        return f"AK-{self.name}"


#: The standard battery (mirrors XDMoD's NAMD/I-O/linear-algebra set).
DEFAULT_KERNELS: tuple[AppKernelSpec, ...] = (
    AppKernelSpec("namd8", "namd", nodes=8),
    AppKernelSpec("md-small", "gromacs", nodes=2),
    AppKernelSpec("io-bench", "io_pipeline", nodes=2,
                  runtime_minutes=20.0),
)


@dataclass(frozen=True)
class PerfRegression:
    """A fault to inject: jobs of the given apps started after *start*
    achieve only *flops_factor* of their FLOPS (a miscompiled library, a
    bad BIOS setting after maintenance, ...).  ``apps=None`` hits every
    application — a stack-wide regression."""

    start: float
    flops_factor: float
    apps: tuple[str, ...] | None = None

    def __post_init__(self):
        if not 0 < self.flops_factor <= 1.5:
            raise ValueError("flops_factor out of range")

    def applies(self, app: str, start_time: float) -> bool:
        if start_time < self.start:
            return False
        return self.apps is None or app in self.apps


def kernel_user_profile() -> UserProfile:
    """The benchmark account: perfectly efficient, deterministic."""
    return UserProfile(
        username=KERNEL_USER, uid=999, account="AK",
        science_field="Computer Science",
        apps=tuple(sorted({k.app for k in DEFAULT_KERNELS})),
        activity=1e-6, persona="efficient", util_factor=1.0,
        mem_factor=1.0, io_factor=1.0, net_factor=1.0,
    )


def kernel_requests(
    specs: tuple[AppKernelSpec, ...],
    config: FacilityConfig,
    seed: int,
    start_jobid: int = 9_000_000,
) -> list[JobRequest]:
    """The cron-submitted kernel jobs over the config's horizon."""
    requests: list[JobRequest] = []
    jobid = start_jobid
    for spec in specs:
        cadence = spec.cadence_hours * 3600.0
        t = cadence * 0.5
        while t < config.horizon:
            runtime = spec.runtime_minutes * 60.0
            requests.append(JobRequest(
                jobid=str(jobid),
                user=KERNEL_USER,
                account=spec.account,
                science_field="Computer Science",
                app=spec.app,
                queue="appkernel",
                submit_time=t,
                nodes=min(spec.nodes, max(1, config.num_nodes // 4)),
                walltime_req=runtime * 2.0,
                runtime=runtime,
                behavior_seed=stable_hash64(
                    f"{seed}/{config.stream_prefix}/appkernel/{jobid}"
                ) % (1 << 62),
            ))
            jobid += 1
            t += cadence
    requests.sort(key=lambda r: r.submit_time)
    return requests


@dataclass(frozen=True)
class ControlChart:
    """One kernel×metric control chart."""

    kernel: str
    metric: str
    times: np.ndarray
    values: np.ndarray
    baseline_mean: float
    baseline_sigma: float
    violations: np.ndarray  # boolean mask over values

    @property
    def violation_rate(self) -> float:
        return float(self.violations.mean()) if self.values.size else 0.0

    def first_violation_time(self) -> float | None:
        idx = np.nonzero(self.violations)[0]
        return float(self.times[idx[0]]) if idx.size else None


class AppKernelMonitor:
    """Control-chart monitoring of app-kernel runs.

    Parameters
    ----------
    query:
        The system's :class:`~repro.xdmod.query.JobQuery`.
    baseline_runs:
        Number of earliest runs that define each chart's center line.
    sigma_threshold:
        Deviations beyond this many baseline sigmas are violations.
    min_sigma_frac:
        Floor on the baseline sigma as a fraction of the mean, so a
        freakishly quiet baseline cannot make noise look like a
        regression.
    """

    #: Metrics watched per kernel run.
    METRICS = ("cpu_flops", "cpu_idle", "io_scratch_write", "net_ib_tx")

    def __init__(self, query, baseline_runs: int = 8,
                 sigma_threshold: float = 3.0,
                 min_sigma_frac: float = 0.02):
        if baseline_runs < 3:
            raise ValueError("need at least 3 baseline runs")
        self.query = query.filter(user=KERNEL_USER)
        self.baseline_runs = baseline_runs
        self.sigma_threshold = sigma_threshold
        self.min_sigma_frac = min_sigma_frac

    def kernels(self) -> list[str]:
        accounts = np.unique(self.query.column("account"))
        return sorted(a[3:] for a in accounts if a.startswith("AK-"))

    def chart(self, kernel: str, metric: str) -> ControlChart:
        sub = self.query.filter(account=f"AK-{kernel}")
        if len(sub) < self.baseline_runs + 2:
            raise ValueError(
                f"kernel {kernel}: only {len(sub)} runs, need "
                f">= {self.baseline_runs + 2}"
            )
        order = np.argsort(sub.column("start_time"))
        times = sub.column("start_time")[order]
        values = sub.column(metric)[order]
        base = values[: self.baseline_runs]
        mean = float(base.mean())
        sigma = max(float(base.std(ddof=1)),
                    abs(mean) * self.min_sigma_frac, 1e-12)
        violations = np.abs(values - mean) > self.sigma_threshold * sigma
        violations[: self.baseline_runs] = False
        return ControlChart(
            kernel=kernel, metric=metric, times=times, values=values,
            baseline_mean=mean, baseline_sigma=sigma,
            violations=violations,
        )

    def detect_regressions(self, min_consecutive: int = 3) -> list[dict]:
        """Sustained departures from baseline, most severe first.

        A regression requires *min_consecutive* consecutive violations —
        a single bad run is a rerun candidate, not a stack problem.
        """
        findings = []
        for kernel in self.kernels():
            for metric in self.METRICS:
                try:
                    chart = self.chart(kernel, metric)
                except ValueError:
                    continue
                run = 0
                onset_idx = None
                for i, bad in enumerate(chart.violations):
                    run = run + 1 if bad else 0
                    if run >= min_consecutive:
                        onset_idx = i - min_consecutive + 1
                        break
                if onset_idx is None:
                    continue
                after = chart.values[onset_idx:]
                change = float(after.mean() / chart.baseline_mean - 1.0) \
                    if chart.baseline_mean else float("nan")
                findings.append({
                    "kernel": kernel,
                    "metric": metric,
                    "onset_time": float(chart.times[onset_idx]),
                    "relative_change": change,
                })
        findings.sort(key=lambda f: -abs(f["relative_change"]))
        return findings
