"""Metric correlation and independent-set selection (§4.2).

The paper chose its eight key metrics "based on a correlation analysis
over all of the measured metrics", observing e.g. cpu_user strongly
anti-correlated with cpu_idle and net_ib_rx with net_ib_tx, and keeping
"the smallest independent set".  We reproduce both the matrix and the
greedy selection.
"""

from __future__ import annotations

import numpy as np

from repro.ingest.summarize import SUMMARY_METRICS
from repro.util.stats import pearson_matrix
from repro.xdmod.query import JobQuery

__all__ = ["correlation_matrix", "select_independent", "strong_pairs"]


def correlation_matrix(
    query: JobQuery,
    metrics: tuple[str, ...] = SUMMARY_METRICS,
    derive_cpu_user_complement: bool = True,
) -> tuple[list[str], np.ndarray]:
    """Pearson matrix over per-job metric values.

    Jobs are the observations (as in the paper's job-level analysis).
    """
    cols = {}
    for m in metrics:
        v = query.column(m)
        if v.std() == 0:
            continue  # constant metrics carry no correlation information
        cols[m] = v
    if len(cols) < 2:
        raise ValueError("need at least two non-constant metrics")
    return pearson_matrix(cols)


def strong_pairs(names: list[str], r: np.ndarray,
                 threshold: float = 0.8) -> list[tuple[str, str, float]]:
    """Metric pairs with |correlation| above *threshold*, strongest first."""
    out = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if abs(r[i, j]) >= threshold:
                out.append((names[i], names[j], float(r[i, j])))
    out.sort(key=lambda t: -abs(t[2]))
    return out


def select_independent(
    names: list[str],
    r: np.ndarray,
    threshold: float = 0.8,
    priority: tuple[str, ...] = (),
) -> list[str]:
    """Greedy smallest-independent-set selection.

    Walk metrics in priority order (then input order); keep a metric only
    if its |correlation| with every already-kept metric stays below
    *threshold*.  With the paper's redundant pairs (tx/rx, user/idle) this
    reproduces the collapse from the full measured set to eight.
    """
    if r.shape != (len(names), len(names)):
        raise ValueError("matrix/name shape mismatch")
    order = [n for n in priority if n in names]
    order += [n for n in names if n not in order]
    idx = {n: i for i, n in enumerate(names)}
    kept: list[str] = []
    for n in order:
        i = idx[n]
        if all(abs(r[i, idx[k]]) < threshold for k in kept):
            kept.append(n)
    return kept
