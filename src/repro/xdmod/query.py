"""Job-level query engine: filter / group-by / weighted statistics.

This is the analytical core under every report: load the joined
job+metrics table once into column arrays, then answer group-by questions
with vectorized numpy.  All metric averages are node-hour weighted, per
the paper's §4.1 ("values were calculated by the job weighted by
node*hour").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse

__all__ = ["JobQuery", "GroupResult"]

DIMENSIONS = ("user", "account", "science_field", "app", "queue",
              "exit_status")


@dataclass(frozen=True)
class GroupResult:
    """One group's aggregates from :meth:`JobQuery.group_by`."""

    key: str
    job_count: int
    node_hours: float
    weighted_means: dict[str, float]

    def mean(self, metric: str) -> float:
        return self.weighted_means[metric]


class JobQuery:
    """A filterable view over one system's jobs.

    Filters return *new* queries (the underlying arrays are shared), so a
    base query can branch cheaply into per-report variants.
    """

    def __init__(self, warehouse: Warehouse, system: str,
                 metrics: tuple[str, ...] = SUMMARY_METRICS,
                 _table: dict[str, np.ndarray] | None = None,
                 _mask: np.ndarray | None = None):
        self.system = system
        self.metrics = metrics
        self._table = (
            _table if _table is not None
            else warehouse.job_table(system, metrics)
        )
        n = len(self._table["jobid"])
        self._mask = _mask if _mask is not None else np.ones(n, dtype=bool)

    # -- plumbing ------------------------------------------------------------

    def _derive(self, mask: np.ndarray) -> "JobQuery":
        q = object.__new__(JobQuery)
        q.system = self.system
        q.metrics = self.metrics
        q._table = self._table
        q._mask = mask
        return q

    def column(self, name: str) -> np.ndarray:
        """A column restricted to the current filter."""
        return self._table[name][self._mask]

    def __len__(self) -> int:
        return int(self._mask.sum())

    # -- filtering -------------------------------------------------------------

    def filter(self, **dims: str | tuple[str, ...]) -> "JobQuery":
        """Filter on dimension equality, e.g. ``filter(user="user0042")``
        or ``filter(app=("namd", "amber"))``."""
        mask = self._mask.copy()
        for dim, value in dims.items():
            if dim not in DIMENSIONS:
                raise ValueError(f"unknown dimension {dim!r}")
            col = self._table[dim]
            if isinstance(value, tuple):
                mask &= np.isin(col, value)
            else:
                mask &= col == value
        return self._derive(mask)

    def filter_range(self, column: str, lo: float | None = None,
                     hi: float | None = None) -> "JobQuery":
        """Filter on a numeric column range (inclusive bounds)."""
        col = self._table[column]
        mask = self._mask.copy()
        if lo is not None:
            mask &= col >= lo
        if hi is not None:
            mask &= col <= hi
        return self._derive(mask)

    # -- statistics --------------------------------------------------------------

    @property
    def node_hours(self) -> float:
        return float(self.column("node_hours").sum())

    def weighted_mean(self, metric: str) -> float:
        """Node-hour-weighted mean of a metric over the filtered jobs."""
        v = self.column(metric)
        w = self.column("node_hours")
        if v.size == 0:
            raise ValueError(f"no jobs in filter for metric {metric!r}")
        wsum = w.sum()
        if wsum <= 0:
            raise ValueError("zero node-hours in filter")
        return float(np.sum(v * w) / wsum)

    def weighted_means(self, metrics: tuple[str, ...] | None = None) -> dict[str, float]:
        return {
            m: self.weighted_mean(m) for m in (metrics or self.metrics)
        }

    def group_by(self, dimension: str,
                 metrics: tuple[str, ...] | None = None) -> list[GroupResult]:
        """Aggregate by a dimension, ordered by descending node-hours."""
        if dimension not in DIMENSIONS:
            raise ValueError(f"unknown dimension {dimension!r}")
        metrics = metrics or self.metrics
        keys = self.column(dimension)
        w = self.column("node_hours")
        vals = {m: self.column(m) for m in metrics}
        out: list[GroupResult] = []
        uniq, inverse = np.unique(keys, return_inverse=True)
        for gi, key in enumerate(uniq):
            sel = inverse == gi
            wsel = w[sel]
            wsum = wsel.sum()
            means = {
                m: float(np.sum(vals[m][sel] * wsel) / wsum) if wsum > 0
                else float("nan")
                for m in metrics
            }
            out.append(GroupResult(
                key=str(key),
                job_count=int(sel.sum()),
                node_hours=float(wsum),
                weighted_means=means,
            ))
        out.sort(key=lambda g: -g.node_hours)
        return out

    def top(self, dimension: str, n: int) -> list[str]:
        """The *n* heaviest values of a dimension by node-hours."""
        return [g.key for g in self.group_by(dimension, metrics=())[:n]]
