"""Job-level query engine: filter / group-by / weighted statistics.

This is the analytical core under every report.  Since the columnar
engine landed, a query is a *view* over the shared
:class:`~repro.xdmod.snapshot.WarehouseSnapshot`: dimension columns are
dictionary-encoded ``int32`` code arrays, so equality filters compare
integers and :meth:`JobQuery.group_by` is an ``np.bincount``-based
weighted-aggregation kernel over the code arrays (one pass per metric)
instead of a boolean mask per group.  All metric averages are node-hour
weighted, per the paper's §4.1 ("values were calculated by the job
weighted by node*hour").

Group-by, weighted-mean and node-hour results are memoized on the
snapshot, keyed by ``(operation, system, base metrics, filter spec,
group spec, metrics)``; the filter spec is the canonical chain of
``filter``/``filter_range`` steps that produced this view.  A new ingest
commit moves the warehouse's data version, which replaces the snapshot
and with it every cached result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.summarize import SUMMARY_METRICS
from repro.ingest.warehouse import Warehouse
from repro.telemetry.metrics import get_registry
from repro.xdmod.snapshot import DIMENSIONS, SystemFrame, WarehouseSnapshot

__all__ = ["JobQuery", "GroupResult", "DIMENSIONS"]


@dataclass(frozen=True)
class GroupResult:
    """One group's aggregates from :meth:`JobQuery.group_by`.

    ``key`` is the display key ("namd", or "namd|completed" for a
    multi-dimension group-by); ``keys`` carries the per-dimension parts.
    """

    key: str
    job_count: int
    node_hours: float
    weighted_means: dict[str, float]
    keys: tuple[str, ...] = ()

    def mean(self, metric: str) -> float:
        return self.weighted_means[metric]


class JobQuery:
    """A filterable view over one system's jobs.

    Filters return *new* queries (the underlying snapshot arrays are
    shared), so a base query can branch cheaply into per-report
    variants.  Construction does not rescan the warehouse: all queries
    on the same warehouse generation share one
    :class:`~repro.xdmod.snapshot.SystemFrame` per system.
    """

    def __init__(self, warehouse: Warehouse, system: str,
                 metrics: tuple[str, ...] = SUMMARY_METRICS,
                 _mask: np.ndarray | None = None,
                 snapshot: WarehouseSnapshot | None = None):
        for m in metrics:
            if m not in SUMMARY_METRICS:
                raise ValueError(f"unknown metric {m!r}")
        self.system = system
        self.metrics = tuple(metrics)
        # An explicit snapshot pins the query to one frozen view (the
        # service layer resolves the handle once per request so every
        # sub-query of a report sees the same generation); otherwise
        # the process-wide current snapshot is used.
        self._snapshot = (snapshot if snapshot is not None
                          else WarehouseSnapshot.for_warehouse(warehouse))
        self._frame: SystemFrame = self._snapshot.frame(system)
        if _mask is not None:
            self._mask = _mask
            self._spec: tuple | None = None  # custom mask: not cacheable
        else:
            self._mask = self._frame.complete_mask(self.metrics)
            self._spec = ()

    # -- plumbing ------------------------------------------------------------

    def _derive(self, mask: np.ndarray, spec: tuple | None) -> "JobQuery":
        q = object.__new__(JobQuery)
        q.system = self.system
        q.metrics = self.metrics
        q._snapshot = self._snapshot
        q._frame = self._frame
        q._mask = mask
        q._spec = spec
        return q

    def _cached(self, op: str, key_tail: tuple, compute):
        """Memoize on the snapshot when this view has a canonical spec."""
        if self._spec is None:
            return compute()
        key = (op, self.system, self.metrics, self._spec) + key_tail
        return self._snapshot.cached(key, compute)

    def _column_raw(self, name: str) -> np.ndarray:
        """A full-frame column (dimensions decoded to object arrays)."""
        if name == "jobid":
            return self._frame.jobid
        if name in DIMENSIONS:
            return self._frame.decode(name)
        if name in SUMMARY_METRICS and name not in self.metrics:
            # Metrics outside the query's completeness set would leak
            # NaN rows; requesting them was a KeyError before the
            # columnar engine and stays one.
            raise KeyError(name)
        return self._frame.numeric[name]

    def column(self, name: str) -> np.ndarray:
        """A column restricted to the current filter."""
        return self._column_raw(name)[self._mask]

    def __len__(self) -> int:
        return int(self._mask.sum())

    # -- filtering -------------------------------------------------------------

    def filter(self, **dims: str | tuple[str, ...]) -> "JobQuery":
        """Filter on dimension equality, e.g. ``filter(user="user0042")``
        or ``filter(app=("namd", "amber"))``.

        Runs on the int32 code arrays; a value that never occurs on this
        system short-circuits to an empty view, and further filters on
        an already-empty view reuse the mask without re-materializing
        anything.
        """
        mask = self._mask
        spec = self._spec
        fresh = False  # may we &= in place (mask not shared yet)?
        for dim, value in sorted(dims.items()):
            if dim not in DIMENSIONS:
                raise ValueError(f"unknown dimension {dim!r}")
            if spec is not None:
                spec = spec + (("eq", dim, value),)
            if not mask.any():
                continue  # already empty: the result is decided
            codes = self._frame.codes[dim]
            if isinstance(value, tuple):
                wanted = [c for c in (self._frame.code_of(dim, v)
                                      for v in value) if c >= 0]
                if not wanted:
                    sub = np.zeros(self._frame.n_rows, dtype=bool)
                else:
                    sub = np.isin(codes, np.array(wanted, dtype=np.int32))
            else:
                code = self._frame.code_of(dim, value)
                if code < 0:
                    sub = np.zeros(self._frame.n_rows, dtype=bool)
                else:
                    sub = codes == code
            if fresh:
                mask &= sub
            else:
                mask = mask & sub
                fresh = True
        return self._derive(mask, spec)

    def filter_range(self, column: str, lo: float | None = None,
                     hi: float | None = None) -> "JobQuery":
        """Filter on a numeric column range (inclusive bounds)."""
        col = self._column_raw(column)
        spec = self._spec
        if spec is not None:
            spec = spec + (("range", column, lo, hi),)
        mask = self._mask
        if mask.any():
            if lo is not None:
                mask = mask & (col >= lo)
                if hi is not None:
                    mask &= col <= hi
            elif hi is not None:
                mask = mask & (col <= hi)
        return self._derive(mask, spec)

    # -- statistics --------------------------------------------------------------

    @property
    def node_hours(self) -> float:
        return self._cached("node_hours", (), lambda: float(
            self.column("node_hours").sum()))

    def weighted_mean(self, metric: str) -> float:
        """Node-hour-weighted mean of a metric over the filtered jobs."""
        def compute() -> float:
            v = self.column(metric)
            w = self.column("node_hours")
            if v.size == 0:
                raise ValueError(f"no jobs in filter for metric {metric!r}")
            wsum = w.sum()
            if wsum <= 0:
                raise ValueError("zero node-hours in filter")
            return float(np.sum(v * w) / wsum)
        return self._cached("wmean", (metric,), compute)

    def weighted_means(self, metrics: tuple[str, ...] | None = None) -> dict[str, float]:
        return {
            m: self.weighted_mean(m)
            for m in (self.metrics if metrics is None else metrics)
        }

    def group_by(self, dimension: str | tuple[str, ...],
                 metrics: tuple[str, ...] | None = None) -> list[GroupResult]:
        """Aggregate by one dimension — or several at once, e.g.
        ``group_by(("app", "exit_status"))`` — ordered by descending
        node-hours.

        The kernel is ``np.bincount`` over the dictionary codes: one
        weighted pass per metric regardless of the group count.  Pass
        ``metrics=()`` for counts and node-hours only.
        """
        dims = (dimension,) if isinstance(dimension, str) else tuple(dimension)
        if not dims:
            raise ValueError("group_by needs at least one dimension")
        for d in dims:
            if d not in DIMENSIONS:
                raise ValueError(f"unknown dimension {d!r}")
        metrics = self.metrics if metrics is None else tuple(metrics)
        for m in metrics:
            if m in SUMMARY_METRICS and m not in self.metrics:
                raise KeyError(m)
        # A counter, not a span: group_by is called per report cell and
        # a span each would balloon the run's trace tree.
        get_registry().counter("analytics.group_by_calls").inc()
        result = self._cached(
            "group_by", (dims, metrics),
            lambda: self._group_by_kernel(dims, metrics),
        )
        return list(result)  # callers may re-sort/slice their copy

    def _group_by_kernel(self, dims: tuple[str, ...],
                         metrics: tuple[str, ...]) -> list[GroupResult]:
        frame = self._frame
        idx = np.flatnonzero(self._mask)
        sizes = [len(frame.uniques[d]) for d in dims]
        combined = frame.codes[dims[0]][idx].astype(np.int64)
        nbins = sizes[0] if sizes else 0
        for d, size in zip(dims[1:], sizes[1:]):
            combined = combined * size + frame.codes[d][idx]
            nbins *= size
        w = frame.numeric["node_hours"][idx]

        counts = np.bincount(combined, minlength=nbins)
        wsums = np.bincount(combined, weights=w, minlength=nbins)
        present = np.flatnonzero(counts)
        means: dict[str, np.ndarray] = {}
        with np.errstate(divide="ignore", invalid="ignore"):
            for m in metrics:
                sums = np.bincount(combined,
                                   weights=frame.numeric[m][idx] * w,
                                   minlength=nbins)
                means[m] = np.where(wsums > 0, sums / wsums, np.nan)

        out: list[GroupResult] = []
        for b in present:
            parts = []
            rest = int(b)
            for size in reversed(sizes[1:]):
                rest, part = divmod(rest, size)
                parts.append(part)
            parts.append(rest)
            keys = tuple(
                str(frame.uniques[d][c])
                for d, c in zip(dims, reversed(parts))
            )
            out.append(GroupResult(
                key="|".join(keys) if len(keys) > 1 else keys[0],
                job_count=int(counts[b]),
                node_hours=float(wsums[b]),
                weighted_means={m: float(means[m][b]) for m in metrics},
                keys=keys,
            ))
        out.sort(key=lambda g: -g.node_hours)
        return out

    def top(self, dimension: str, n: int) -> list[str]:
        """The *n* heaviest values of a dimension by node-hours."""
        return [g.key for g in self.group_by(dimension, metrics=())[:n]]
