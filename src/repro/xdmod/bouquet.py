"""The "bouquet of machines" analysis (paper §5).

    "one could argue that given the very different demands placed on
    machines by different applications and from users from different
    fields of science, XSEDE should consider providing a 'bouquet' of
    machines tuned to different user groups rather than the monolithic
    general purpose machines of today."

Given a warehouse holding several systems, this module scores every
significant application on every system (efficiency, FLOPS yield, memory
headroom), recommends a placement, and quantifies the prize: the
node-hours that would stop being wasted if each application ran on its
best-fit machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.warehouse import Warehouse
from repro.util.tables import render_kv, render_table
from repro.xdmod.query import JobQuery

__all__ = ["AppPlacement", "BouquetAnalysis"]


@dataclass(frozen=True)
class AppPlacement:
    """One application's cross-system comparison."""

    app: str
    per_system: dict[str, dict[str, float]]  # system -> scores
    best_system: str
    current_wasted_node_hours: float
    wasted_if_placed: float

    @property
    def savings_node_hours(self) -> float:
        return self.current_wasted_node_hours - self.wasted_if_placed


class BouquetAnalysis:
    """Cross-system application placement from one shared warehouse."""

    def __init__(self, warehouse: Warehouse, min_jobs_per_system: int = 15):
        systems = warehouse.systems()
        if len(systems) < 2:
            raise ValueError(
                "the bouquet analysis needs at least two systems in the "
                f"warehouse; found {systems}"
            )
        self.systems = systems
        self.min_jobs = min_jobs_per_system
        self._queries = {s: JobQuery(warehouse, s) for s in systems}

    def _scores(self, query: JobQuery, app: str) -> dict[str, float] | None:
        sub = query.filter(app=app)
        if len(sub) < self.min_jobs:
            return None
        idle = sub.weighted_mean("cpu_idle")
        return {
            "jobs": float(len(sub)),
            "node_hours": sub.node_hours,
            "efficiency": 1.0 - idle,
            "flops_gf": sub.weighted_mean("cpu_flops"),
            "wasted_node_hours": sub.node_hours * idle,
        }

    def placements(self) -> list[AppPlacement]:
        """Per-app cross-system scores for every app with enough jobs on
        at least two systems, biggest potential savings first."""
        apps: set[str] = set()
        for q in self._queries.values():
            apps.update(str(a) for a in np.unique(q.column("app")))
        out: list[AppPlacement] = []
        for app in sorted(apps):
            per_system = {}
            for system, q in self._queries.items():
                scores = self._scores(q, app)
                if scores is not None:
                    per_system[system] = scores
            if len(per_system) < 2:
                continue
            best = max(per_system, key=lambda s: per_system[s]["efficiency"])
            current_wasted = sum(
                s["wasted_node_hours"] for s in per_system.values())
            total_nh = sum(s["node_hours"] for s in per_system.values())
            wasted_if = total_nh * (1.0 - per_system[best]["efficiency"])
            out.append(AppPlacement(
                app=app, per_system=per_system, best_system=best,
                current_wasted_node_hours=current_wasted,
                wasted_if_placed=wasted_if,
            ))
        out.sort(key=lambda p: -p.savings_node_hours)
        return out

    def total_savings(self) -> float:
        """Node-hours recovered facility-wide by best-fit placement
        (negative contributions clipped: nobody forces a move that makes
        things worse)."""
        return float(sum(max(p.savings_node_hours, 0.0)
                         for p in self.placements()))

    def render(self) -> str:
        placements = self.placements()
        rows = []
        for p in placements:
            row = {"application": p.app, "steer to": p.best_system,
                   "saves (nh)": f"{max(p.savings_node_hours, 0):.0f}"}
            for system in self.systems:
                s = p.per_system.get(system)
                row[system] = (f"{s['efficiency']:.1%}" if s else "-")
            rows.append(row)
        return "\n\n".join([
            render_kv({
                "systems": ", ".join(self.systems),
                "apps compared": len(placements),
                "recoverable node-hours": f"{self.total_savings():.0f}",
            }, title="BOUQUET ANALYSIS (paper §5)"),
            render_table(
                rows,
                ["application"] + list(self.systems)
                + ["steer to", "saves (nh)"],
                title="Per-application efficiency by system",
            ),
        ])
