"""Workload characterization — §4.3.4's "system level resource use
patterns and workload characterization" and §4.3.5's "differences in job
characteristics by discipline area".

Distributional views of the job mix itself (as opposed to its resource
use): job-size spectrum on power-of-two classes, runtime classes, the
queue mix, and per-discipline comparisons of the structural job
parameters — what a center feeds into procurement sizing ("HPC systems
are purchased based on performance on a projected job mix", §1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.xdmod.query import JobQuery

__all__ = ["SpectrumBin", "WorkloadCharacterization"]

_RUNTIME_EDGES_H = (0.0, 0.5, 2.0, 8.0, 24.0, float("inf"))
_RUNTIME_LABELS = ("<30m", "30m-2h", "2h-8h", "8h-24h", ">24h")


@dataclass(frozen=True)
class SpectrumBin:
    """One class of the job-size or runtime spectrum."""

    label: str
    job_count: int
    job_share: float
    node_hours: float
    node_hour_share: float


class WorkloadCharacterization:
    """Structural views of one system's job mix."""

    def __init__(self, query: JobQuery):
        if len(query) == 0:
            raise ValueError("no jobs to characterize")
        self.query = query
        self._nodes = query.column("nodes")
        self._hours = (query.column("end_time")
                       - query.column("start_time")) / 3600.0
        self._nh = query.column("node_hours")

    def _spectrum(self, labels, masks) -> list[SpectrumBin]:
        n = len(self.query)
        total_nh = float(self._nh.sum())
        out = []
        for label, mask in zip(labels, masks):
            count = int(mask.sum())
            if count == 0:
                continue
            nh = float(self._nh[mask].sum())
            out.append(SpectrumBin(
                label=label, job_count=count, job_share=count / n,
                node_hours=nh, node_hour_share=nh / total_nh,
            ))
        return out

    def size_spectrum(self) -> list[SpectrumBin]:
        """Job counts and node-hours on power-of-two size classes."""
        max_pow = int(np.ceil(np.log2(max(self._nodes.max(), 1)))) + 1
        labels, masks = [], []
        for p in range(max_pow + 1):
            lo = 1 if p == 0 else (1 << (p - 1)) + 1
            hi = 1 << p
            if lo > hi:
                continue
            labels.append(str(hi) if lo == hi else f"{lo}-{hi}")
            masks.append((self._nodes >= lo) & (self._nodes <= hi))
        return self._spectrum(labels, masks)

    def runtime_spectrum(self) -> list[SpectrumBin]:
        """Job counts and node-hours on runtime classes."""
        labels, masks = [], []
        for label, lo, hi in zip(_RUNTIME_LABELS, _RUNTIME_EDGES_H,
                                 _RUNTIME_EDGES_H[1:]):
            labels.append(label)
            masks.append((self._hours >= lo) & (self._hours < hi))
        return self._spectrum(labels, masks)

    def queue_mix(self) -> list[SpectrumBin]:
        queues = self.query.column("queue")
        labels = [str(q) for q in np.unique(queues)]
        masks = [queues == q for q in labels]
        bins = self._spectrum(labels, masks)
        bins.sort(key=lambda b: -b.node_hours)
        return bins

    def discipline_contrast(self, min_share: float = 0.02) -> list[dict]:
        """Per-science-field structural parameters (the §4.3.5
        "differences in job characteristics by discipline area" report):
        weighted mean size, weighted mean runtime, serial fraction."""
        out = []
        fields = self.query.column("science_field")
        total_nh = float(self._nh.sum())
        for field in np.unique(fields):
            sel = fields == field
            nh = float(self._nh[sel].sum())
            if nh < min_share * total_nh:
                continue
            w = self._nh[sel]
            out.append({
                "science_field": str(field),
                "node_hour_share": nh / total_nh,
                "mean_nodes": float(np.sum(self._nodes[sel] * w) / nh),
                "mean_runtime_h": float(np.sum(self._hours[sel] * w) / nh),
                "serial_job_fraction": float(
                    (self._nodes[sel] == 1).mean()),
            })
        out.sort(key=lambda d: -d["node_hour_share"])
        return out

    def concentration(self) -> dict[str, float]:
        """How concentrated is consumption (Figure 2's premise that a
        handful of users dominate): top-1/5/10% user shares and the Gini
        coefficient of per-user node-hours."""
        groups = self.query.group_by("user", metrics=())
        hours = np.sort(np.array([g.node_hours for g in groups]))[::-1]
        total = hours.sum()
        n = hours.size

        def top_share(frac: float) -> float:
            k = max(1, int(np.ceil(frac * n)))
            return float(hours[:k].sum() / total)

        asc = hours[::-1]
        gini = float(
            (2 * np.sum((np.arange(1, n + 1)) * asc) / (n * total))
            - (n + 1) / n
        ) if n > 1 else 0.0
        return {
            "users": float(n),
            "top_1pct_share": top_share(0.01),
            "top_5pct_share": top_share(0.05),
            "top_10pct_share": top_share(0.10),
            "gini": gini,
        }
