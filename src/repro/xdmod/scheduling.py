"""Scheduling-effectiveness analytics (paper §4.3.4: "assessing the
effectiveness with which the current scheduling and resource management
policies and tactics are obtaining desired objectives").

The standard queueing metrics a center tracks: wait times and bounded
slowdown by queue and by job-size class, plus throughput.  These are the
numbers an admin compares before/after a policy change (our scheduler
ablation benches do exactly that comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.stats import weighted_quantile
from repro.xdmod.query import JobQuery

__all__ = ["ClassStats", "SchedulingAnalysis"]

#: Bounded-slowdown floor (standard in the scheduling literature: avoid
#: tiny jobs dominating the metric).
_BSLD_FLOOR_S = 600.0

#: Job-size classes (nodes).
_SIZE_CLASSES = ((1, 1, "serial"), (2, 8, "small"), (9, 64, "medium"),
                 (65, 10**9, "large"))


@dataclass(frozen=True)
class ClassStats:
    """Queueing statistics of one job class."""

    key: str
    job_count: int
    node_hours: float
    median_wait_h: float
    p90_wait_h: float
    mean_bounded_slowdown: float

    @staticmethod
    def from_arrays(key: str, wait_s: np.ndarray, run_s: np.ndarray,
                    node_hours: float) -> "ClassStats":
        if wait_s.size == 0:
            raise ValueError(f"class {key}: no jobs")
        bsld = (wait_s + run_s) / np.maximum(run_s, _BSLD_FLOOR_S)
        return ClassStats(
            key=key,
            job_count=int(wait_s.size),
            node_hours=float(node_hours),
            median_wait_h=float(np.median(wait_s)) / 3600.0,
            p90_wait_h=float(np.percentile(wait_s, 90)) / 3600.0,
            mean_bounded_slowdown=float(np.maximum(bsld, 1.0).mean()),
        )


class SchedulingAnalysis:
    """Wait/slowdown breakdowns over one system's jobs."""

    def __init__(self, query: JobQuery):
        if len(query) == 0:
            raise ValueError("no jobs to analyze")
        self.query = query
        self._wait = (query.column("start_time")
                      - query.column("submit_time"))
        self._run = np.maximum(
            query.column("end_time") - query.column("start_time"), 1.0)
        self._nodes = query.column("nodes")
        self._nh = query.column("node_hours")

    def overall(self) -> ClassStats:
        return ClassStats.from_arrays("(all)", self._wait, self._run,
                                      float(self._nh.sum()))

    def by_queue(self) -> list[ClassStats]:
        """Wait statistics per submission queue, busiest first."""
        out = []
        queues = self.query.column("queue")
        for q in np.unique(queues):
            sel = queues == q
            out.append(ClassStats.from_arrays(
                str(q), self._wait[sel], self._run[sel],
                float(self._nh[sel].sum()),
            ))
        out.sort(key=lambda c: -c.node_hours)
        return out

    def by_size(self) -> list[ClassStats]:
        """Wait statistics per job-size class (serial → large)."""
        out = []
        for lo, hi, label in _SIZE_CLASSES:
            sel = (self._nodes >= lo) & (self._nodes <= hi)
            if not sel.any():
                continue
            out.append(ClassStats.from_arrays(
                label, self._wait[sel], self._run[sel],
                float(self._nh[sel].sum()),
            ))
        return out

    def weighted_wait_quantile(self, q: float) -> float:
        """Node-hour-weighted wait quantile, hours — what the *machine's
        capacity* experienced, not what the median small job did."""
        return weighted_quantile(self._wait, q, weights=self._nh) / 3600.0

    def large_job_penalty(self) -> float:
        """Median wait of the largest class over the smallest — how much
        extra queueing a big allocation pays (backfill's known cost)."""
        classes = {c.key: c for c in self.by_size()}
        small = classes.get("serial") or classes.get("small")
        big = classes.get("large") or classes.get("medium")
        if small is None or big is None:
            raise ValueError("need both small and large job classes")
        if small.median_wait_h == 0:
            return float("inf") if big.median_wait_h > 0 else 1.0
        return big.median_wait_h / small.median_wait_h
