"""Wasted node-hours and efficiency outliers — Figure 4 (and the circled
users profiled in Figure 5).

Definitions follow the paper exactly: *wasted node-hours* are node-hours
spent with the CPU idle (``node_hours × cpu_idle``); *efficiency* is "the
percentage of time not spent in CPU idle"; the red line on the scatter is
the facility-average efficiency (90 % on Ranger, 85 % on Lonestar4).

The per-user aggregation is a single memoized
:meth:`~repro.xdmod.query.JobQuery.group_by` over the snapshot's code
arrays, so constructing this analysis repeatedly (e.g. from both the
support-staff report and a benchmark sweep) pays for one kernel pass per
warehouse generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.xdmod.query import JobQuery

__all__ = ["UserEfficiency", "EfficiencyAnalysis"]


@dataclass(frozen=True)
class UserEfficiency:
    """One user's point on the Figure 4 scatter."""

    user: str
    node_hours: float
    wasted_node_hours: float
    job_count: int

    @property
    def idle_fraction(self) -> float:
        return self.wasted_node_hours / self.node_hours

    @property
    def efficiency(self) -> float:
        return 1.0 - self.idle_fraction


class EfficiencyAnalysis:
    """Figure 4's analysis over one system's jobs."""

    def __init__(self, query: JobQuery):
        self.query = query
        self._users = self._compute()

    def _compute(self) -> list[UserEfficiency]:
        groups = self.query.group_by("user", metrics=("cpu_idle",))
        out = []
        for g in groups:
            out.append(UserEfficiency(
                user=g.key,
                node_hours=g.node_hours,
                wasted_node_hours=g.node_hours * g.mean("cpu_idle"),
                job_count=g.job_count,
            ))
        return out

    @property
    def users(self) -> list[UserEfficiency]:
        """All users, heaviest consumers first."""
        return list(self._users)

    @property
    def facility_efficiency(self) -> float:
        """1 − node-hour-weighted mean cpu_idle (the red line's level)."""
        total = sum(u.node_hours for u in self._users)
        wasted = sum(u.wasted_node_hours for u in self._users)
        if total <= 0:
            raise ValueError("no node-hours in query")
        return 1.0 - wasted / total

    def scatter(self) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """(total node-hours, wasted node-hours, user names) per user."""
        x = np.array([u.node_hours for u in self._users])
        y = np.array([u.wasted_node_hours for u in self._users])
        names = [u.user for u in self._users]
        return x, y, names

    def users_above_line(self, efficiency_line: float | None = None) -> list[UserEfficiency]:
        """Users whose idle fraction exceeds the efficiency line's
        complement (points above the red line)."""
        line = (
            efficiency_line if efficiency_line is not None
            else self.facility_efficiency
        )
        idle_line = 1.0 - line
        return [u for u in self._users if u.idle_fraction > idle_line]

    def worst_heavy_user(self, top_fraction: float = 0.25,
                         min_jobs: int = 3) -> UserEfficiency:
        """The "circled" user: among the heaviest consumers, the one
        wasting the largest fraction of node-hours.

        Parameters
        ----------
        top_fraction:
            Consider users within the top fraction by node-hours (the
            paper circles *large* users — a tiny user at 90 % idle is not
            interesting to support staff).
        min_jobs:
            Ignore users with fewer jobs than this (one bad job is noise).
        """
        if not self._users:
            raise ValueError("no users")
        k = max(1, int(len(self._users) * top_fraction))
        heavy = [u for u in self._users[:k] if u.job_count >= min_jobs]
        if not heavy:
            heavy = self._users[:k]
        return max(heavy, key=lambda u: u.idle_fraction)

    def wasted_total(self) -> float:
        return float(sum(u.wasted_node_hours for u in self._users))
