"""Persistence (forecastability) analysis — Table 1 and Figure 6.

Method (paper §4.3.4): for a system-level metric series x(t) sampled every
10 minutes, introduce an offset τ and compute the standard deviation of
the difference ``x(t+τ) − x(t)``, normalized by the standard deviation of
the metric itself.  A ratio near 0 means the value τ minutes out is almost
known; a ratio near 1 means no better than the ensemble statistics.

Normalization note (documented in DESIGN.md): for an uncorrelated process
``std(x(t+τ)−x(t)) = √2·σ``, yet the paper's table saturates at ≈1.0 — so
their ratio must be the √2-pooled one, ``std(diff)/(√2·σ)``, which is what
we compute.

The per-metric ratios are fit against log10(offset) (Table 1's last row);
all metrics pooled give the combined fit of Figure 6, whose slope the
paper relates to the mean weighted job length (549 min Ranger / 446 min
Lonestar4: shorter jobs → faster loss of memory → steeper slope).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ingest.warehouse import Warehouse
from repro.util.stats import LinearFit, fit_line
from repro.xdmod.snapshot import WarehouseSnapshot

__all__ = [
    "PERSISTENCE_METRICS",
    "offset_std_ratio",
    "MetricPersistence",
    "PersistenceAnalysis",
]

#: Table 1's five metrics -> the warehouse series that carries each.
PERSISTENCE_METRICS: dict[str, str] = {
    "cpu_flops": "flops_tf",
    "mem_used": "mem_used_gb_per_node",
    "io_scratch_write": "io_scratch_write_mb",
    "net_ib_tx": "net_ib_tx_mb",
    "cpu_idle": "cpu_idle_frac",
}

#: Table 1's offsets, in minutes.
DEFAULT_OFFSETS_MIN: tuple[int, ...] = (10, 30, 100, 500, 1000)


def offset_std_ratio(values: np.ndarray, offset_steps: int) -> float:
    """``std(x[k+τ] − x[k]) / (√2 · std(x))`` for one integer-step offset."""
    x = np.asarray(values, dtype=float)
    if offset_steps < 1:
        raise ValueError("offset must be >= 1 step")
    if x.size <= offset_steps + 1:
        raise ValueError(
            f"series too short ({x.size}) for offset {offset_steps}"
        )
    sigma = x.std()
    if sigma == 0:
        raise ValueError("series is constant; ratio undefined")
    diff = x[offset_steps:] - x[:-offset_steps]
    return float(diff.std() / (np.sqrt(2.0) * sigma))


@dataclass(frozen=True)
class MetricPersistence:
    """One metric's row of Table 1."""

    metric: str
    offsets_min: tuple[int, ...]
    ratios: tuple[float, ...]
    fit: LinearFit  # ratio vs log10(offset_min)

    @property
    def fit_r_squared(self) -> float:
        return self.fit.r_squared

    def predictability_horizon_min(self) -> float:
        """Offset at which the fitted ratio reaches 1 (no predictive
        power left) — comparable to the mean job length per the paper."""
        if self.fit.slope <= 0:
            return float("inf")
        return float(10.0 ** ((1.0 - self.fit.intercept) / self.fit.slope))


class PersistenceAnalysis:
    """Builds Table 1 and the Figure 6 combined fit for one system."""

    def __init__(
        self,
        warehouse: Warehouse,
        system: str,
        offsets_min: tuple[int, ...] = DEFAULT_OFFSETS_MIN,
        metrics: dict[str, str] | None = None,
        snapshot: "WarehouseSnapshot | None" = None,
    ):
        self.system = system
        self.offsets_min = offsets_min
        self._metrics = dict(metrics or PERSISTENCE_METRICS)
        self._snapshot = (snapshot if snapshot is not None
                          else WarehouseSnapshot.for_warehouse(warehouse))
        info = self._snapshot.system_info(system)
        self.step_min = info["sample_interval"] / 60.0
        self._series: dict[str, np.ndarray] = {}
        for metric, series_name in self._metrics.items():
            _, v = self._snapshot.series(system, series_name)
            self._series[metric] = v

    def table(self) -> list[MetricPersistence]:
        """Table 1: one row per metric (memoized on the snapshot — the
        combined fit and predictability ordering reuse it for free)."""
        key = ("persistence_table", self.system, self.offsets_min,
               tuple(sorted(self._metrics.items())))
        return list(self._snapshot.cached(key, self._compute_table))

    def _compute_table(self) -> list[MetricPersistence]:
        out = []
        for metric in self._metrics:
            v = self._series[metric]
            ratios = []
            offs = []
            for off_min in self.offsets_min:
                steps = max(1, int(round(off_min / self.step_min)))
                try:
                    ratios.append(offset_std_ratio(v, steps))
                    offs.append(off_min)
                except ValueError:
                    continue  # series too short for this offset
            if len(ratios) < 3:
                raise ValueError(
                    f"series for {metric} too short for persistence table"
                )
            fit = fit_line(np.log10(offs), np.array(ratios))
            out.append(MetricPersistence(
                metric=metric,
                offsets_min=tuple(offs),
                ratios=tuple(ratios),
                fit=fit,
            ))
        return out

    def combined_fit(self) -> LinearFit:
        """Figure 6: all metrics' (log10 offset, ratio) points in one OLS."""
        xs: list[float] = []
        ys: list[float] = []
        for row in self.table():
            xs.extend(np.log10(row.offsets_min))
            ys.extend(row.ratios)
        return fit_line(np.array(xs), np.array(ys))

    def predictability_order(self) -> list[str]:
        """Metrics from least to most predictable (paper:
        io_scratch_write < net_ib_tx ~ cpu_idle < mem_used ~ cpu_flops),
        ordered by the ratio at the shortest offset."""
        rows = self.table()
        rows.sort(key=lambda r: -r.ratios[0])
        return [r.metric for r in rows]
