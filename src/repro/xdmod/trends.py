"""Resource-use trends — §4.3.5's "job-level resource use trends" and
"resource use trends and predictions" for resource managers and funding
agencies.

Aggregates job facts into fixed time buckets (default: weekly), fits a
linear trend per group, and ranks growers/shrinkers — the "planning for
future systems" view: which disciplines and applications are expanding
their share of the machine, and what would the mix look like at the next
procurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.stats import LinearFit, fit_line
from repro.util.timeutil import WEEK
from repro.xdmod.query import DIMENSIONS, JobQuery

__all__ = ["TrendResult", "TrendAnalysis"]


@dataclass(frozen=True)
class TrendResult:
    """One group's usage trajectory."""

    key: str
    bucket_times: np.ndarray     # bucket start, seconds
    node_hours: np.ndarray       # per bucket
    fit: LinearFit               # node-hours per bucket vs bucket index

    @property
    def slope_per_bucket(self) -> float:
        """Node-hours gained (+) or lost (−) per bucket."""
        return self.fit.slope

    @property
    def relative_growth(self) -> float:
        """Slope relative to the mean bucket (fraction per bucket)."""
        mean = float(self.node_hours.mean())
        if mean == 0:
            return 0.0
        return self.fit.slope / mean

    @property
    def significant(self) -> bool:
        return self.fit.slope_p < 0.05

    def forecast(self, buckets_ahead: int) -> float:
        """Extrapolated node-hours per bucket (floored at zero)."""
        n = self.bucket_times.size
        return max(0.0, float(self.fit.predict([n - 1 + buckets_ahead])[0]))


class TrendAnalysis:
    """Bucketed trend fits over one system's jobs.

    Parameters
    ----------
    query:
        The system's job query.
    bucket_seconds:
        Bucket width (default one week — XDMoD's default trend grain).
    min_buckets:
        Minimum buckets required to fit a trend.
    """

    def __init__(self, query: JobQuery, bucket_seconds: float = WEEK,
                 min_buckets: int = 4):
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if min_buckets < 3:
            raise ValueError("need at least 3 buckets for a trend")
        self.query = query
        self.bucket_seconds = float(bucket_seconds)
        self.min_buckets = min_buckets
        start = query.column("start_time")
        if start.size == 0:
            raise ValueError("no jobs to analyze")
        self._n_buckets = int(start.max() // self.bucket_seconds) + 1
        if self._n_buckets < min_buckets:
            raise ValueError(
                f"horizon covers only {self._n_buckets} buckets; need "
                f">= {min_buckets} (shrink bucket_seconds?)"
            )

    @property
    def n_buckets(self) -> int:
        return self._n_buckets

    def _bucketize(self, sub: JobQuery) -> np.ndarray:
        """Node-hours per bucket for a filtered query (jobs are assigned
        to the bucket of their start time, as XDMoD does)."""
        out = np.zeros(self._n_buckets)
        idx = (sub.column("start_time") // self.bucket_seconds).astype(int)
        np.add.at(out, np.clip(idx, 0, self._n_buckets - 1),
                  sub.column("node_hours"))
        return out

    def trend(self, dimension: str, key: str) -> TrendResult:
        """Trend of one group's node-hours."""
        if dimension not in DIMENSIONS:
            raise ValueError(f"unknown dimension {dimension!r}")
        sub = self.query.filter(**{dimension: key})
        if len(sub) == 0:
            raise ValueError(f"no jobs for {dimension}={key!r}")
        hours = self._bucketize(sub)
        times = np.arange(self._n_buckets) * self.bucket_seconds
        fit = fit_line(np.arange(self._n_buckets, dtype=float), hours)
        return TrendResult(key=key, bucket_times=times, node_hours=hours,
                           fit=fit)

    def all_trends(self, dimension: str,
                   min_node_hours: float = 0.0) -> list[TrendResult]:
        """Trends for every group above a consumption floor, sorted by
        relative growth (fastest growers first)."""
        results = []
        for g in self.query.group_by(dimension, metrics=()):
            if g.node_hours < min_node_hours:
                continue
            results.append(self.trend(dimension, g.key))
        results.sort(key=lambda t: -t.relative_growth)
        return results

    def total_trend(self) -> TrendResult:
        """The whole system's delivered node-hours trajectory."""
        hours = self._bucketize(self.query)
        fit = fit_line(np.arange(self._n_buckets, dtype=float), hours)
        return TrendResult(
            key="(total)",
            bucket_times=np.arange(self._n_buckets) * self.bucket_seconds,
            node_hours=hours, fit=fit,
        )
