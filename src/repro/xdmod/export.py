"""Report/chart data exporters.

XDMoD's web UI serves every chart's underlying data as CSV/JSON for
download ("the option for stakeholders to define custom reports", §4.3);
this module provides the same: any aggregate, profile, time series, or
density from the analytics layer can be exported as CSV text or a
JSON-serializable chart-data dict (labels + series, ready for any
plotting front end).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Sequence

import numpy as np

from repro.xdmod.density import DensityCurve
from repro.xdmod.profiles import Profile
from repro.xdmod.query import GroupResult
from repro.xdmod.timeseries import SeriesSummary

__all__ = [
    "to_csv",
    "groups_to_csv",
    "profile_chart",
    "series_chart",
    "density_chart",
    "groups_chart",
    "dump_json",
]


def to_csv(rows: Sequence[dict[str, Any]],
           columns: Sequence[str] | None = None) -> str:
    """Serialize dict rows as CSV (header included)."""
    if not rows:
        raise ValueError("no rows to export")
    cols = list(columns) if columns else list(rows[0])
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=cols, extrasaction="raise")
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row[c] for c in cols})
    return buf.getvalue()


def groups_to_csv(groups: Sequence[GroupResult],
                  metrics: Sequence[str] = ()) -> str:
    """Group-by results (one row per group) as CSV."""
    rows = []
    for g in groups:
        row: dict[str, Any] = {
            "group": g.key,
            "job_count": g.job_count,
            "node_hours": round(g.node_hours, 3),
        }
        for m in metrics:
            row[m] = g.weighted_means[m]
        rows.append(row)
    return to_csv(rows)


def _chart(kind: str, title: str, **payload: Any) -> dict[str, Any]:
    return {"kind": kind, "title": title, **payload}


def profile_chart(profile: Profile) -> dict[str, Any]:
    """A normalized usage profile as radar-chart data (Figures 2/3/5)."""
    return _chart(
        "radar",
        f"{profile.dimension}={profile.entity}",
        axes=list(profile.values),
        values=[float(v) for v in profile.values.values()],
        baseline=1.0,
        meta={
            "node_hours": profile.node_hours,
            "job_count": profile.job_count,
            "raw": {k: float(v) for k, v in profile.raw.items()},
        },
    )


def series_chart(series: SeriesSummary, max_points: int = 2000) -> dict[str, Any]:
    """A system time series as line-chart data (Figures 7-9/11).

    Long series are decimated by averaging into at most *max_points*
    buckets so exports stay browser-sized.
    """
    t, v = series.times, series.values
    if t.size > max_points:
        edges = np.linspace(0, t.size, max_points + 1).astype(int)
        t = np.array([t[a:b].mean() for a, b in zip(edges[:-1], edges[1:])
                      if b > a])
        v = np.array([series.values[a:b].mean()
                      for a, b in zip(edges[:-1], edges[1:]) if b > a])
    return _chart(
        "line",
        series.name,
        t=[float(x) for x in t],
        y=[float(x) for x in v],
        meta={"mean": series.mean, "peak": series.peak,
              "min": series.minimum},
    )


def density_chart(curve: DensityCurve) -> dict[str, Any]:
    """A KDE as area-chart data (Figures 10/12)."""
    return _chart(
        "area",
        curve.label,
        x=[float(x) for x in curve.grid],
        y=[float(y) for y in curve.density],
        meta={"mean": curve.mean, "mode": curve.mode},
    )


def groups_chart(groups: Sequence[GroupResult], metric: str | None,
                 title: str) -> dict[str, Any]:
    """Group-by results as bar-chart data (Figure 7a style)."""
    if not groups:
        raise ValueError("no groups to export")
    values = [
        g.node_hours if metric is None else g.weighted_means[metric]
        for g in groups
    ]
    return _chart(
        "bar",
        title,
        labels=[g.key for g in groups],
        values=[float(v) for v in values],
        meta={"metric": metric or "node_hours"},
    )


def dump_json(chart: dict[str, Any]) -> str:
    """Stable JSON text for a chart-data dict."""
    return json.dumps(chart, sort_keys=True, indent=2)
