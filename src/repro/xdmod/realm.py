"""The SUPReMM "realm": XDMoD's generic dimension × statistic interface.

XDMoD's analysis surface is a catalog of *dimensions* (group-bys) and
*statistics* (aggregates) from which stakeholders compose standard and
custom reports (§4.3: "a powerful and flexible analysis interface that has
many analyses reports preprogrammed and also the option ... to define
custom reports").  This module is that catalog: every chart in the
stakeholder reports can be expressed as ``realm.aggregate(dimension,
statistic)``, and users can register custom statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ingest.summarize import SUMMARY_METRICS
from repro.xdmod.query import DIMENSIONS, JobQuery

__all__ = ["Statistic", "SupremmRealm"]


@dataclass(frozen=True)
class Statistic:
    """One aggregate: a label plus a function of a (filtered) JobQuery."""

    name: str
    label: str
    unit: str
    compute: Callable[[JobQuery], float]


def _builtin_statistics() -> dict[str, Statistic]:
    stats: dict[str, Statistic] = {}

    def add(name: str, label: str, unit: str,
            fn: Callable[[JobQuery], float]) -> None:
        stats[name] = Statistic(name, label, unit, fn)

    add("job_count", "Number of jobs", "jobs", lambda q: float(len(q)))
    add("node_hours", "Node hours", "node-hours", lambda q: q.node_hours)
    add("avg_nodes", "Mean job size", "nodes",
        lambda q: float(q.column("nodes").mean()))
    add("avg_wall_hours", "Mean wall time", "hours",
        lambda q: float(
            (q.column("end_time") - q.column("start_time")).mean() / 3600.0
        ))
    add("avg_wait_hours", "Mean queue wait", "hours",
        lambda q: float(
            (q.column("start_time") - q.column("submit_time")).mean() / 3600.0
        ))
    add("failure_rate", "Abnormal-exit fraction", "fraction",
        lambda q: float((q.column("exit_status") != "completed").mean()))
    for m in SUMMARY_METRICS:
        add(
            f"avg_{m}",
            f"Weighted mean {m}",
            "native",
            (lambda metric: lambda q: q.weighted_mean(metric))(m),
        )
    add("wasted_node_hours", "Idle (wasted) node hours", "node-hours",
        lambda q: q.node_hours * q.weighted_mean("cpu_idle"))
    return stats


class SupremmRealm:
    """Dimension × statistic aggregation over one system."""

    def __init__(self, query: JobQuery):
        self.query = query
        self._stats = _builtin_statistics()

    @property
    def dimensions(self) -> tuple[str, ...]:
        return DIMENSIONS

    @property
    def statistics(self) -> tuple[str, ...]:
        return tuple(sorted(self._stats))

    def register_statistic(self, stat: Statistic) -> None:
        """Add a custom statistic (the paper's "custom reports")."""
        if stat.name in self._stats:
            raise ValueError(f"statistic {stat.name!r} already registered")
        self._stats[stat.name] = stat

    def aggregate(
        self,
        dimension: str,
        statistic: str,
        filters: dict | None = None,
        limit: int | None = None,
    ) -> list[tuple[str, float]]:
        """``(group, value)`` pairs ordered by descending node-hours."""
        if dimension not in DIMENSIONS:
            raise ValueError(f"unknown dimension {dimension!r}")
        stat = self._stats.get(statistic)
        if stat is None:
            raise ValueError(
                f"unknown statistic {statistic!r}; known: {self.statistics}"
            )
        q = self.query.filter(**filters) if filters else self.query
        groups = q.group_by(dimension, metrics=())
        out: list[tuple[str, float]] = []
        for g in groups[: limit if limit else len(groups)]:
            sub = q.filter(**{dimension: g.key})
            out.append((g.key, stat.compute(sub)))
        return out

    def value(self, statistic: str, filters: dict | None = None) -> float:
        """A single aggregate over the (optionally filtered) system."""
        stat = self._stats.get(statistic)
        if stat is None:
            raise ValueError(f"unknown statistic {statistic!r}")
        q = self.query.filter(**filters) if filters else self.query
        return stat.compute(q)
