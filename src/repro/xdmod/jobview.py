"""Per-job drill-down: the SUPReMM "job viewer".

TACC_Stats' defining feature is that samples are "tagged with a batch job
id to enable offline job-by-job profile analysis" (§3).  This module does
that analysis for a single job from raw parsed host data: per-interval
rate series for the key quantities, per-host comparison (is one node the
straggler?), and a rendered text timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tacc_stats.collectors.intel_pmc import FP_OVERCOUNT
from repro.tacc_stats.parser import event_delta
from repro.tacc_stats.types import HostData
from repro.util.tables import render_kv
from repro.util.textchart import series_text
from repro.util.units import GB, KB

__all__ = ["JobTimeline", "job_timeline"]

#: (label, extractor kind, args) for the quantities the viewer shows.
_RATE_SPECS = {
    "cpu_user_frac": ("cpu", "user", "frac"),
    "cpu_idle_frac": ("cpu", "idle", "frac"),
    "flops_gf": (None, None, "flops"),
    "mem_used_gb": ("mem", "MemUsed", "gauge_gb"),
    "scratch_write_mb": ("llite", "write_bytes", "mb_rate"),
    "ib_tx_mb": ("ib", "port_xmit_data", "words_mb_rate"),
}


@dataclass
class JobTimeline:
    """Per-interval rate series of one job on one or more hosts.

    ``series[name]`` is a (n_hosts, n_intervals) array; ``times`` holds
    the interval midpoints.
    """

    jobid: str
    hostnames: tuple[str, ...]
    times: np.ndarray
    series: dict[str, np.ndarray]

    @property
    def n_intervals(self) -> int:
        return self.times.size

    def host_mean(self, name: str) -> np.ndarray:
        """Across-host mean series for one quantity."""
        return self.series[name].mean(axis=0)

    def straggler(self, name: str = "cpu_user_frac") -> tuple[str, float]:
        """(hostname, relative deviation) of the most deviant host —
        load-imbalance debugging, a classic job-viewer use."""
        per_host = self.series[name].mean(axis=1)
        overall = per_host.mean()
        if overall == 0:
            raise ValueError(f"no signal in {name}")
        idx = int(np.argmax(np.abs(per_host - overall)))
        return self.hostnames[idx], float(per_host[idx] / overall - 1.0)

    def render(self) -> str:
        """Text rendering: one sparkline per quantity (host means)."""
        lines = [render_kv({
            "job": self.jobid,
            "hosts": len(self.hostnames),
            "intervals": self.n_intervals,
            "window": f"{self.times[0]:.0f} .. {self.times[-1]:.0f}",
        }, title=f"Job timeline — {self.jobid}")]
        width = max(len(n) for n in self.series)
        for name, mat in self.series.items():
            lines.append(series_text(self.times, mat.mean(axis=0),
                                     label=f"{name:<{width}}", fmt=".2f"))
        return "\n".join(lines)


def _interval_deltas(host: HostData, blocks, type_name: str, key: str,
                     sum_devices: bool = True) -> np.ndarray | None:
    """Per-interval counter deltas summed across devices."""
    schema = host.schemas.get(type_name)
    if schema is None:
        return None
    col = schema.index_of(key)
    width = schema.entries[col].width
    out = np.zeros(len(blocks) - 1)
    for i, (prev, cur) in enumerate(zip(blocks, blocks[1:])):
        devs_prev = prev.rows.get(type_name)
        devs_cur = cur.rows.get(type_name)
        if not devs_prev or not devs_cur:
            return None
        total = 0
        for dev, v_cur in devs_cur.items():
            v_prev = devs_prev.get(dev)
            if v_prev is None:
                return None
            total += event_delta(int(v_prev[col]), int(v_cur[col]), width)
        out[i] = total
    return out


def _host_series(host: HostData, jobid: str) -> tuple[np.ndarray, dict]:
    blocks = host.blocks_for_job(jobid)
    if len(blocks) < 2:
        raise ValueError(
            f"{host.hostname}: job {jobid} has < 2 samples"
        )
    times = np.array([b.time for b in blocks])
    dt = np.diff(times)
    mids = 0.5 * (times[:-1] + times[1:])

    out: dict[str, np.ndarray] = {}
    cpu_total = None
    for name, (type_name, key, kind) in _RATE_SPECS.items():
        if kind == "frac":
            deltas = _interval_deltas(host, blocks, type_name, key)
            if deltas is None:
                continue
            if cpu_total is None:
                parts = [
                    _interval_deltas(host, blocks, "cpu", k)
                    for k in ("user", "nice", "system", "idle", "iowait",
                              "irq", "softirq")
                ]
                if any(p is None for p in parts):
                    continue
                cpu_total = np.sum(parts, axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                out[name] = np.where(cpu_total > 0, deltas / cpu_total, 0.0)
        elif kind == "flops":
            if "amd64_pmc" in host.schemas:
                deltas = _interval_deltas(host, blocks, "amd64_pmc", "ctr0")
                scale = 1.0
            elif "intel_pmc" in host.schemas:
                deltas = _interval_deltas(host, blocks, "intel_pmc", "ctr0")
                scale = 1.0 / FP_OVERCOUNT
            else:
                deltas = None
                scale = 1.0
            if deltas is None:
                continue
            out[name] = deltas * scale / dt / 1e9
        elif kind == "gauge_gb":
            schema = host.schemas.get(type_name)
            if schema is None:
                continue
            col = schema.index_of(key)
            vals = np.array([
                sum(float(v[col]) for v in b.rows.get(type_name, {}).values())
                for b in blocks
            ])
            out[name] = 0.5 * (vals[:-1] + vals[1:]) * KB / GB
        elif kind == "mb_rate":
            deltas = _interval_deltas(host, blocks, type_name, key)
            if deltas is None:
                continue
            out[name] = deltas / dt / 1e6
        elif kind == "words_mb_rate":
            deltas = _interval_deltas(host, blocks, type_name, key)
            if deltas is None:
                continue
            out[name] = deltas * 4.0 / dt / 1e6
    return mids, out


def job_timeline(jobid: str, hosts: list[HostData]) -> JobTimeline:
    """Build the drill-down timeline of one job from its hosts' data.

    Hosts whose streams lack a quantity (e.g. foreign PMCs) are skipped
    for that quantity only; at least one host must provide each series.
    """
    if not hosts:
        raise ValueError("no host data")
    per_host: list[tuple[str, np.ndarray, dict]] = []
    for h in hosts:
        # Streams that never carried the job (or saw only its begin
        # sample) are simply not part of this job's timeline.
        if len(h.blocks_for_job(jobid)) < 2:
            continue
        mids, series = _host_series(h, jobid)
        per_host.append((h.hostname, mids, series))
    if not per_host:
        raise ValueError(f"job {jobid}: no host stream with >= 2 samples")

    # Align on the shortest common interval count (a crashed host may
    # have fewer samples).
    n = min(mids.size for _, mids, _ in per_host)
    if n == 0:
        raise ValueError(f"job {jobid}: no usable intervals")
    times = per_host[0][1][:n]

    series: dict[str, np.ndarray] = {}
    for name in _RATE_SPECS:
        rows = [s[name][:n] for _, _, s in per_host if name in s]
        if rows:
            series[name] = np.vstack(rows)
    if not series:
        raise ValueError(f"job {jobid}: no extractable series")
    return JobTimeline(
        jobid=jobid,
        hostnames=tuple(h for h, _, _ in per_host),
        times=times,
        series=series,
    )
